//! Buffer-pool behavior under a real training workload.
//!
//! Two contracts from DESIGN.md §10:
//!
//! * **Accounting** — a checked-in (idle) pooled buffer is *not* live:
//!   `live_bytes`/`peak_bytes` must behave exactly as they would without a
//!   pool, and idle bytes are visible only through `pool_idle_bytes`.
//! * **Reuse** — tape-based training is a recycling workload; with the pool
//!   on, fresh heap allocations (pool misses) per step must drop by at
//!   least half versus the pool-disabled baseline.
//!
//! The pool and the accounting are process-global, so the tests in this
//! file serialize on one mutex and use buffer sizes no other test touches.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::Graph;
use cpgan_nn::layers::{Activation, Linear, Mlp};
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{memory, BlockDiagCsr, FusedAct, Matrix, ParamStore, Tape, Var};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, Mutex};

static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn idle_pooled_bytes_are_not_live_and_do_not_inflate_peak() {
    let _guard = POOL_LOCK.lock().unwrap();
    memory::set_pool_enabled(true);
    memory::pool_clear();

    // A size no other test allocates, so this thread's bucket is ours.
    const R: usize = 1009; // prime
    const C: usize = 7;
    const BYTES: usize = R * C * std::mem::size_of::<f32>();

    let live0 = memory::live_bytes();
    let idle0 = memory::pool_idle_bytes();

    let m = Matrix::zeros(R, C);
    assert_eq!(memory::live_bytes(), live0 + BYTES, "allocation is live");

    drop(m); // checked into the pool, not freed —
    assert_eq!(
        memory::live_bytes(),
        live0,
        "idle pooled bytes are not live"
    );
    assert_eq!(
        memory::pool_idle_bytes(),
        idle0 + BYTES,
        "idle bytes visible via pool_idle_bytes"
    );

    // Peak must reflect only genuinely-live bytes: re-allocating the same
    // buffer (a pool hit) may not double-count against peak.
    memory::reset_peak();
    let peak0 = memory::peak_bytes();
    let m2 = Matrix::zeros(R, C);
    assert_eq!(
        memory::peak_bytes(),
        peak0.max(live0 + BYTES),
        "pool checkout accounts like a fresh allocation"
    );
    drop(m2);
    assert!(
        memory::live_bytes() <= memory::peak_bytes(),
        "live never exceeds peak"
    );

    memory::pool_clear();
    assert_eq!(
        memory::pool_idle_bytes(),
        idle0,
        "pool_clear returns idle bytes to the allocator"
    );
}

/// One short XOR training run; returns pool misses incurred.
fn train_misses(iters: usize) -> u64 {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mlp = Mlp::new(&mut store, &mut rng, &[2, 16, 1], Activation::Tanh);
    let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let y = Arc::new(Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]));
    let mut opt = Adam::with_lr(0.05);
    // Warm up one step outside the measurement window so the pool's free
    // lists are primed with the step's buffer sizes.
    for _ in 0..2 {
        let tape = Tape::new();
        let input = tape.constant(x.clone());
        let loss = mlp.forward(&tape, &input).sigmoid().mse_mean(&y);
        loss.backward();
        opt.step(&store);
    }
    memory::reset_pool_stats();
    for _ in 0..iters {
        let tape = Tape::new();
        let input = tape.constant(x.clone());
        let loss = mlp.forward(&tape, &input).sigmoid().mse_mean(&y);
        loss.backward();
        opt.step(&store);
    }
    memory::pool_misses()
}

/// The fused+batched GCN training step is a pure recycling workload: after
/// warm-up, every buffer a step allocates was freed by the previous step,
/// so a warmed-up step incurs **zero** pool misses (DESIGN §13).
#[test]
fn warmed_fused_batched_step_allocates_nothing_fresh() {
    let _guard = POOL_LOCK.lock().unwrap();
    memory::set_pool_enabled(true);
    memory::pool_clear();

    // Two small fixed subgraph blocks; the operator, features, and targets
    // are built once — steady-state training reuses them.
    let g1 = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
    let g2 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    let batch = BlockDiagCsr::from_graphs([&g1, &g2]);
    let rows: Vec<Arc<Vec<usize>>> = (0..batch.blocks())
        .map(|b| Arc::new(batch.block_range(b).collect()))
        .collect();
    let x0 = Matrix::from_fn(batch.total_rows(), 4, |r, c| {
        ((r * 4 + c) as f32 * 0.31).sin()
    });
    let targets: Vec<Arc<Matrix>> = [6usize, 4]
        .iter()
        .map(|&n| Arc::new(Matrix::from_fn(n, n, |r, c| ((r + c) % 2) as f32)))
        .collect();

    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let l1 = Linear::new(&mut store, &mut rng, 4, 6, true);
    let l2 = Linear::new(&mut store, &mut rng, 6, 3, true);
    let mut opt = Adam::with_lr(1e-2);

    let step = |opt: &mut Adam| {
        let tape = Tape::new();
        let x = tape.constant(x0.clone());
        let b1 = l1.bias().map(|b| tape.param(b));
        let b2 = l2.bias().map(|b| tape.param(b));
        let h =
            l1.forward_weight(&tape, &x)
                .spmm_bias_act_batched(&batch, b1.as_ref(), FusedAct::Relu);
        let z = l2.forward_weight(&tape, &h).spmm_bias_act_batched(
            &batch,
            b2.as_ref(),
            FusedAct::Identity,
        );
        let mut loss: Option<Var> = None;
        for (b, r) in rows.iter().enumerate() {
            let zb = z.gather_rows(r);
            let logits = zb.matmul(&zb.transpose());
            let l = logits.bce_with_logits_mean(&targets[b], None);
            loss = Some(match loss {
                None => l,
                Some(acc) => acc.add(&l),
            });
        }
        let loss = loss.expect("non-empty batch").scale(0.5);
        store.zero_grad();
        loss.backward();
        opt.step(&store);
    };

    // Warm-up primes the free lists and Adam's moment state.
    for _ in 0..3 {
        step(&mut opt);
    }
    memory::reset_pool_stats();
    for _ in 0..5 {
        step(&mut opt);
    }
    let misses = memory::pool_misses();
    memory::pool_clear();
    assert_eq!(
        misses, 0,
        "warmed-up fused batched step must be allocation-free, saw {misses} pool misses"
    );
}

/// The *unfused* sparse path (`Var::spmm`) now pulls the backward operator
/// from the adjacency's memoized transpose instead of rebuilding it per
/// call, so a warmed-up step over a fixed operator is also a pure recycling
/// workload: zero pool misses, and the transpose Arc is built exactly once.
#[test]
fn warmed_unfused_spmm_step_allocates_nothing_fresh() {
    let _guard = POOL_LOCK.lock().unwrap();
    memory::set_pool_enabled(true);
    memory::pool_clear();

    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let adj = Arc::new(cpgan_nn::Csr::normalized_adjacency(&g));
    let x0 = Matrix::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.17).cos());
    let target = Arc::new(Matrix::from_fn(5, 5, |r, c| ((r + c) % 2) as f32));

    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(13);
    let l1 = Linear::new(&mut store, &mut rng, 4, 6, false);
    let l2 = Linear::new(&mut store, &mut rng, 6, 3, false);
    let mut opt = Adam::with_lr(1e-2);

    let step = |opt: &mut Adam| {
        let tape = Tape::new();
        let x = tape.constant(x0.clone());
        let h = l1.forward_weight(&tape, &x).spmm(&adj).relu();
        let z = l2.forward_weight(&tape, &h).spmm(&adj);
        let logits = z.matmul(&z.transpose());
        let loss = logits.bce_with_logits_mean(&target, None);
        store.zero_grad();
        loss.backward();
        opt.step(&store);
    };

    for _ in 0..3 {
        step(&mut opt);
    }
    let t_before = adj.transpose_cached();
    memory::reset_pool_stats();
    for _ in 0..5 {
        step(&mut opt);
    }
    let misses = memory::pool_misses();
    let t_after = adj.transpose_cached();
    memory::pool_clear();
    assert!(
        Arc::ptr_eq(&t_before, &t_after),
        "steps must reuse the memoized transpose, not rebuild it"
    );
    assert_eq!(
        misses, 0,
        "warmed-up unfused spmm step must be allocation-free, saw {misses} pool misses"
    );
}

#[test]
fn pooled_training_steps_halve_fresh_allocations() {
    let _guard = POOL_LOCK.lock().unwrap();

    memory::set_pool_enabled(false);
    memory::pool_clear();
    let misses_off = train_misses(200);

    memory::set_pool_enabled(true);
    memory::pool_clear();
    let misses_on = train_misses(200);
    memory::pool_clear();

    assert!(misses_off > 0, "baseline must allocate");
    assert!(
        misses_on * 2 <= misses_off,
        "pool must cut fresh allocations by >= 50%: {misses_on} on vs {misses_off} off"
    );
}
