//! Property-based tests for the tensor/autograd substrate.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_nn::{kernels, Matrix, Param, Tape};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Deterministic sign-mixed content for shape-randomized tests (the shapes
/// come from proptest; the content need not shrink). The `+ 0.11` keeps
/// every element away from exact `0.0`, which the bitwise comparisons
/// against the branchy seed references require.
fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * cols + c) as f32 + seed as f32 * 0.37) * 0.731 + 0.11).sin() * 1.7
    })
}

fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}[{i}]: blocked {g} != naive {w}"
        );
    }
}

/// Max |blocked - naive| scaled for a length-`k` f32 dot product.
fn nt_tolerance(k: usize) -> f32 {
    1e-5 * (k as f32).max(1.0)
}

proptest! {
    #[test]
    fn matmul_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in arb_matrix(3, 3),
        b in arb_matrix(3, 3),
        c in arb_matrix(3, 3),
    ) {
        let left = a.matmul(&b.zip(&c, |x, y| x + y));
        let right = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        // (AB)^T = B^T A^T.
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_transpose_products_agree(a in arb_matrix(4, 3), b in arb_matrix(4, 2)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(4, 5)) {
        let t = Tape::new();
        let y = t.constant(m).softmax_rows().value();
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn backward_linear_in_seed(m in arb_matrix(2, 3)) {
        // For linear ops, scaling the function scales the gradient.
        let p1 = Param::new(m.clone());
        {
            let t = Tape::new();
            t.param(&p1).scale(1.0).sum_all().backward();
        }
        let p2 = Param::new(m);
        {
            let t = Tape::new();
            t.param(&p2).scale(3.0).sum_all().backward();
        }
        for (a, b) in p1.lock().grad.as_slice().iter().zip(p2.lock().grad.as_slice()) {
            prop_assert!((3.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_output_bounded(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let y = t.constant(m).sigmoid().value();
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn relu_idempotent(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let x = t.constant(m);
        let once = x.relu().value();
        let twice = x.relu().relu().value();
        prop_assert_eq!(once.as_slice(), twice.as_slice());
    }

    #[test]
    fn row_l2_normalize_norms(m in arb_matrix(4, 3)) {
        // Skip degenerate all-zero rows by shifting.
        let shifted = m.map(|v| v + 3.0);
        let t = Tape::new();
        let y = t.constant(shifted).row_l2_normalize(1.5).value();
        for r in 0..4 {
            let norm: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!((norm - 1.5).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_loss_nonnegative(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let target = std::sync::Arc::new(Matrix::from_fn(3, 3, |r, c| ((r + c) % 2) as f32));
        let loss = t.constant(m).bce_with_logits_mean(&target, None);
        prop_assert!(loss.item() >= 0.0);
    }

    // -------------------------------------------------------------------
    // Blocked kernels vs the retained naive references, random shapes.
    // The blocked NN/TN kernels keep per-element ascending-k accumulation,
    // so they must match the scalar i-k-j loops *bitwise*, not just within
    // tolerance. `k` ranges past KC=256 so the k-slab resume path runs.
    // -------------------------------------------------------------------

    #[test]
    fn blocked_matmul_matches_naive_bitwise(
        m in 1usize..24, k in 1usize..300, n in 1usize..40, seed in 0u64..32
    ) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed + 1);
        assert_bits_eq(&a.matmul(&b), &kernels::matmul_naive(&a, &b), "matmul");
    }

    #[test]
    fn blocked_matmul_tn_matches_naive_bitwise(
        m in 1usize..24, k in 1usize..300, n in 1usize..40, seed in 0u64..32
    ) {
        let a = seeded(k, m, seed);
        let b = seeded(k, n, seed + 1);
        assert_bits_eq(&a.matmul_tn(&b), &kernels::matmul_tn_naive(&a, &b), "matmul_tn");
    }

    #[test]
    fn blocked_matmul_nt_matches_naive_within_tolerance(
        m in 1usize..24, k in 1usize..300, n in 1usize..40, seed in 0u64..32
    ) {
        // NT uses the fixed 8-lane split dot product: deterministic per
        // shape, but a different (still fixed) summation order than naive.
        let a = seeded(m, k, seed);
        let b = seeded(n, k, seed + 1);
        let blocked = a.matmul_nt(&b);
        let naive = kernels::matmul_nt_naive(&a, &b);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() <= nt_tolerance(k), "{x} vs {y} at k={k}");
        }
    }
}

/// Degenerate and boundary-crossing shapes the random ranges above rarely
/// hit: empty dims, 1×1, single row/column, prime dims, exact KC/NC
/// multiples and off-by-one around them, and an NC=1024-crossing panel.
#[test]
fn blocked_kernels_match_naive_on_edge_shapes() {
    let shapes: &[(usize, usize, usize)] = &[
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (1, 7, 1),
        (1, 1, 13),
        (7, 11, 13),
        (31, 37, 41),
        (4, 256, 8),
        (5, 257, 9),
        (8, 255, 16),
        (3, 300, 1100),
    ];
    for &(m, k, n) in shapes {
        let a = seeded(m, k, 3);
        let b = seeded(k, n, 5);
        assert_bits_eq(
            &a.matmul(&b),
            &kernels::matmul_naive(&a, &b),
            &format!("matmul {m}x{k}x{n}"),
        );
        let at = seeded(k, m, 3);
        assert_bits_eq(
            &at.matmul_tn(&b),
            &kernels::matmul_tn_naive(&at, &b),
            &format!("matmul_tn {m}x{k}x{n}"),
        );
        let bt = seeded(n, k, 5);
        let blocked = a.matmul_nt(&bt);
        let naive = kernels::matmul_nt_naive(&a, &bt);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            assert!(
                (x - y).abs() <= nt_tolerance(k),
                "matmul_nt {m}x{k}x{n}: {x} vs {y}"
            );
        }
    }
}
