//! Property-based tests for the tensor/autograd substrate.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_nn::{Matrix, Param, Tape};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in arb_matrix(3, 3),
        b in arb_matrix(3, 3),
        c in arb_matrix(3, 3),
    ) {
        let left = a.matmul(&b.zip(&c, |x, y| x + y));
        let right = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        // (AB)^T = B^T A^T.
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_transpose_products_agree(a in arb_matrix(4, 3), b in arb_matrix(4, 2)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(4, 5)) {
        let t = Tape::new();
        let y = t.constant(m).softmax_rows().value();
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn backward_linear_in_seed(m in arb_matrix(2, 3)) {
        // For linear ops, scaling the function scales the gradient.
        let p1 = Param::new(m.clone());
        {
            let t = Tape::new();
            t.param(&p1).scale(1.0).sum_all().backward();
        }
        let p2 = Param::new(m);
        {
            let t = Tape::new();
            t.param(&p2).scale(3.0).sum_all().backward();
        }
        for (a, b) in p1.lock().grad.as_slice().iter().zip(p2.lock().grad.as_slice()) {
            prop_assert!((3.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_output_bounded(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let y = t.constant(m).sigmoid().value();
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn relu_idempotent(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let x = t.constant(m);
        let once = x.relu().value();
        let twice = x.relu().relu().value();
        prop_assert_eq!(once.as_slice(), twice.as_slice());
    }

    #[test]
    fn row_l2_normalize_norms(m in arb_matrix(4, 3)) {
        // Skip degenerate all-zero rows by shifting.
        let shifted = m.map(|v| v + 3.0);
        let t = Tape::new();
        let y = t.constant(shifted).row_l2_normalize(1.5).value();
        for r in 0..4 {
            let norm: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!((norm - 1.5).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_loss_nonnegative(m in arb_matrix(3, 3)) {
        let t = Tape::new();
        let target = std::sync::Arc::new(Matrix::from_fn(3, 3, |r, c| ((r + c) % 2) as f32));
        let loss = t.constant(m).bce_with_logits_mean(&target, None);
        prop_assert!(loss.item() >= 0.0);
    }
}
