//! Bitwise equivalence proofs for the fused `spmm_bias_act` op and the
//! block-diagonal batch packer (DESIGN §13).
//!
//! * Fused forward and backward must be **bit-identical** to the composed
//!   `spmm → add_row_broadcast → activation` chain, over randomized
//!   shapes, sparsities, and activations.
//! * A `BlockDiagCsr` over `k` subgraphs must produce bit-identical
//!   forward rows, per-block input gradients, and bias gradients to `k`
//!   independent fused calls. (Gradients of shared weights *upstream* of
//!   the packed op reduce in one pass and are deliberately excluded —
//!   see DESIGN §13.)
//! * The DESIGN §13 activation table cannot drift from `FusedAct::ALL`.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::{Graph, GraphBuilder};
use cpgan_nn::{BlockDiagCsr, Csr, FusedAct, Matrix, Param, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic pseudo-random graph: `n` nodes, each pair connected with
/// probability `p`.
fn random_graph(rng: &mut StdRng, n: usize, p: f64) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                b.push_edge(u, v);
            }
        }
    }
    b.build()
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: [{i}] {x} vs {y}");
    }
}

/// Applies the composed (unfused) equivalent of `spmm_bias_act` on `tape`.
fn composed(
    x: &cpgan_nn::Var,
    adj: &Arc<Csr>,
    bias: Option<&cpgan_nn::Var>,
    act: FusedAct,
) -> cpgan_nn::Var {
    let mut h = x.spmm(adj);
    if let Some(b) = bias {
        h = h.add_row_broadcast(b);
    }
    match act {
        FusedAct::Identity => h,
        FusedAct::Relu => h.relu(),
        FusedAct::Sigmoid => h.sigmoid(),
        FusedAct::Tanh => h.tanh(),
    }
}

/// Fused vs composed: forward values, input gradients, and bias gradients
/// must match bit-for-bit over randomized shapes and sparsities.
#[test]
fn fused_matches_composed_bitwise_over_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xf0_5ed);
    for trial in 0..24 {
        let n = rng.gen_range(1..=20);
        let d = [1usize, 3, 8, 17][trial % 4];
        let p = [0.1, 0.4, 0.8][trial % 3];
        let g = random_graph(&mut rng, n, p);
        let adj = Arc::new(Csr::normalized_adjacency(&g));
        let x0 = random_matrix(&mut rng, n, d);
        let b0 = random_matrix(&mut rng, 1, d);
        let w0 = random_matrix(&mut rng, n, d);
        let with_bias = trial % 2 == 0;
        for act in FusedAct::ALL {
            // Downstream of the op both tapes run the identical chain, so
            // any bit difference is the op's.
            let run = |fused: bool| -> (Matrix, Matrix, Option<Matrix>) {
                let xp = Param::new(x0.clone());
                let bp = Param::new(b0.clone());
                let tape = Tape::new();
                let x = tape.param(&xp);
                let b = with_bias.then(|| tape.param(&bp));
                let out = if fused {
                    x.spmm_bias_act(&adj, b.as_ref(), act)
                } else {
                    composed(&x, &adj, b.as_ref(), act)
                };
                let w = tape.constant(w0.clone());
                out.mul(&w).sum_all().backward();
                let value = out.value();
                let gx = xp.lock().grad.clone();
                let gb = with_bias.then(|| bp.lock().grad.clone());
                (value, gx, gb)
            };
            let (v_f, gx_f, gb_f) = run(true);
            let (v_c, gx_c, gb_c) = run(false);
            let what = format!("trial {trial} act {} n {n} d {d}", act.name());
            assert_bits_eq(&v_f, &v_c, &format!("{what}: forward"));
            assert_bits_eq(&gx_f, &gx_c, &format!("{what}: x grad"));
            if let (Some(f), Some(c)) = (&gb_f, &gb_c) {
                assert_bits_eq(f, c, &format!("{what}: bias grad"));
            }
        }
    }
}

/// Packed batch vs `k` independent fused calls: forward rows, per-block
/// input gradients, and the (shared) bias gradient must match bitwise.
/// Includes an empty and a single-node block.
#[test]
fn block_diag_batch_matches_independent_calls_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xb10c);
    let d = 5usize;
    let sizes = [4usize, 0, 1, 7, 3];
    let graphs: Vec<Graph> = sizes
        .iter()
        .map(|&n| random_graph(&mut rng, n, 0.5))
        .collect();
    let blocks: Vec<Csr> = graphs.iter().map(Csr::normalized_adjacency).collect();
    let batch = BlockDiagCsr::from_blocks(&blocks);
    assert_eq!(batch.blocks(), sizes.len());
    let xs: Vec<Matrix> = sizes
        .iter()
        .map(|&n| random_matrix(&mut rng, n, d))
        .collect();
    let ws: Vec<Matrix> = sizes
        .iter()
        .map(|&n| random_matrix(&mut rng, n, d))
        .collect();
    let b0 = random_matrix(&mut rng, 1, d);
    let x_packed = Matrix::vstack(&xs.iter().collect::<Vec<_>>());
    let w_packed = Matrix::vstack(&ws.iter().collect::<Vec<_>>());

    for act in FusedAct::ALL {
        // Packed: one tape, one fused batched op, one backward.
        let xp = Param::new(x_packed.clone());
        let bp = Param::new(b0.clone());
        let (out_packed, gx_packed, gb_packed) = {
            let tape = Tape::new();
            let x = tape.param(&xp);
            let b = tape.param(&bp);
            let out = x.spmm_bias_act_batched(&batch, Some(&b), act);
            let w = tape.constant(w_packed.clone());
            out.mul(&w).sum_all().backward();
            (out.value(), xp.lock().grad.clone(), bp.lock().grad.clone())
        };
        // Independent: one tape per block, sharing the bias param so its
        // gradient accumulates in block order, exactly as the packed
        // backward combines per-block partials.
        let bp_ind = Param::new(b0.clone());
        for (bi, block) in blocks.iter().enumerate() {
            let adj = Arc::new(block.clone());
            let xp_b = Param::new(xs[bi].clone());
            let tape = Tape::new();
            let x = tape.param(&xp_b);
            let b = tape.param(&bp_ind);
            let out = x.spmm_bias_act(&adj, Some(&b), act);
            let w = tape.constant(ws[bi].clone());
            out.mul(&w).sum_all().backward();
            let what = format!("block {bi} act {}", act.name());
            let range = batch.block_range(bi);
            let rows: Vec<f32> = out_packed.as_slice()[range.start * d..range.end * d].to_vec();
            let packed_rows = Matrix::from_vec(sizes[bi], d, rows);
            assert_bits_eq(&packed_rows, &out.value(), &format!("{what}: forward"));
            let gx: Vec<f32> = gx_packed.as_slice()[range.start * d..range.end * d].to_vec();
            let packed_gx = Matrix::from_vec(sizes[bi], d, gx);
            assert_bits_eq(&packed_gx, &xp_b.lock().grad, &format!("{what}: x grad"));
        }
        assert_bits_eq(
            &gb_packed,
            &bp_ind.lock().grad,
            &format!("bias grad, act {}", act.name()),
        );
    }
}

/// Thread count must not change fused results (spot check here; the full
/// 1-vs-N matrix lives in `parallel_equivalence.rs`).
#[test]
fn fused_batched_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x7d);
    let graphs: Vec<Graph> = [30usize, 25, 40]
        .iter()
        .map(|&n| random_graph(&mut rng, n, 0.3))
        .collect();
    let batch = BlockDiagCsr::from_graphs(graphs.iter());
    let x = random_matrix(&mut rng, batch.total_rows(), 64);
    let b = random_matrix(&mut rng, 1, 64);
    let run = |threads: usize| {
        cpgan_parallel::with_thread_count(threads, || {
            batch
                .op()
                .matmul_dense_bias_act(&x, Some(&b), FusedAct::Sigmoid)
        })
    };
    let base = run(1);
    for t in [2, 4] {
        assert_bits_eq(&base, &run(t), &format!("1 vs {t} threads"));
    }
}

/// Doc-sync: the DESIGN §13 activation table and `FusedAct::ALL` cannot
/// drift apart (same pattern as the §12 rule-catalog sync in xtask).
#[test]
fn design_section_13_activation_table_matches_fused_act() {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let design =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let start = design
        .find("## 13.")
        .expect("DESIGN.md must have a §13 (fused tape ops)");
    let rest = &design[start..];
    let end = rest[3..].find("\n## ").map_or(rest.len(), |p| p + 3);
    let section = &rest[..end];
    let documented: Vec<String> = section
        .lines()
        .filter(|l| l.starts_with("| `"))
        .map(|l| {
            l.split('|')
                .map(str::trim)
                .nth(1)
                .unwrap_or_else(|| panic!("malformed table row: {l}"))
                .trim_matches('`')
                .to_string()
        })
        .collect();
    for act in FusedAct::ALL {
        assert!(
            documented.iter().any(|n| n == act.name()),
            "`{}` missing from the DESIGN.md §13 activation table",
            act.name()
        );
    }
    for name in &documented {
        assert!(
            FusedAct::ALL.iter().any(|a| a.name() == name),
            "DESIGN.md §13 documents `{name}`, which is not a FusedAct variant"
        );
    }
}
