#![forbid(unsafe_code)]
//! `cpgan` — command-line interface to the CPGAN graph generator.
//!
//! ```text
//! cpgan fit      --input graph.txt --model model.json [--epochs N] [--seed S]
//! cpgan generate --model model.json --output out.txt [--seed S]
//! cpgan stats    --input graph.txt
//! cpgan eval     --observed graph.txt --generated out.txt
//! cpgan serve    --model model.json [--addr HOST:PORT] [--workers N]
//! cpgan shard    --input graph.txt --output out.txt [--max-shard-size N] [--budget-mb N]
//! cpgan data     list | fetch <name> | verify <name> | stats <name> | ingest <name>
//! ```
//!
//! Graphs are whitespace edge lists (`# nodes: N` header optional), the
//! format `cpgan_graph::io` reads and writes.

use cpgan::{CpGan, CpGanConfig};
use cpgan_community::{louvain, metrics};
use cpgan_graph::{io, mmd, stats, Graph};
use cpgan_serve::{ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

mod args;
mod data;

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     cpgan fit      --input <edge-list> --model <model.json> [--epochs N] [--sample-size N] [--seed S]\n  \
     cpgan generate --model <model.json> --output <edge-list> [--nodes N] [--edges M] [--seed S]\n  \
     cpgan stats    --input <edge-list>\n  \
     cpgan eval     --observed <edge-list> --generated <edge-list>\n  \
     cpgan serve    --model <model.json>[,<model.json>...] [--addr HOST:PORT] [--workers N]\n                 \
     [--queue-depth N] [--deadline-ms N] [--idle-ms N] [--cache-mb N] [--max-conns N]\n  \
     cpgan shard    --input <edge-list> --output <edge-list> [--max-shard-size N] [--budget-mb N]\n                 \
     [--epochs N] [--sample-size N] [--seed S]\n  \
     cpgan data     list | fetch <name> | verify <name> [--report PATH] | stats <name>\n                 \
     | ingest <name> --output <edge-list>   (all: [--data-dir DIR] [--offline];\n                 \
     synthetic entries: [--scale S] [--seed S]; see DESIGN.md \u{a7}15)\n\n\
     any subcommand also accepts:\n  \
     --threads N     worker threads for parallel kernels (same as CPGAN_THREADS=N;\n                  \
     for serve: threads per in-flight generation, see DESIGN.md \u{a7}11)\n  \
     --obs-out PATH  write observability JSONL there and print a summary tree\n                  \
     (see DESIGN.md \u{a7}9)"
}

fn run(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("missing subcommand")?;
    // `data` takes positional actions/names and bare `--offline`, which the
    // strict `--key value` parser rejects — it owns its token parsing (and
    // its own --threads/--obs-out glue).
    if cmd == "data" {
        return data::run(rest);
    }
    let args = Args::parse(rest)?;
    // `--obs-out <path>` turns on observability collection and names the
    // JSONL sink (equivalent to CPGAN_OBS=1 CPGAN_OBS_OUT=<path>).
    let obs_out = args.get("obs-out");
    if obs_out.is_some() {
        cpgan_obs::set_enabled(true);
    }
    // `--threads N` pins the deterministic parallel runtime's thread count
    // for this invocation (equivalent to CPGAN_THREADS=N; results are
    // bit-identical at any setting). `serve` routes it through its own
    // per-worker generation budget instead, so the override is applied to
    // worker threads rather than this (main) thread.
    let threads = args.get_usize("threads")?;
    let dispatch = || match cmd.as_str() {
        "fit" => fit(&args),
        "generate" => generate(&args),
        "stats" => show_stats(&args),
        "eval" => eval(&args),
        "serve" => serve(&args),
        "shard" => shard(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    };
    let result = match threads {
        Some(n) if cmd != "serve" => cpgan_parallel::with_thread_count(n, dispatch),
        _ => dispatch(),
    };
    // Flush even on error so partial runs still leave telemetry behind.
    cpgan_obs::finish(obs_out.as_deref());
    result
}

fn load_graph(path: &str) -> Result<Graph, String> {
    io::load(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn fit(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let model_path = args.require("model")?;
    let g = load_graph(&input)?;
    eprintln!("observed graph: {} nodes, {} edges", g.n(), g.m());
    let cfg = CpGanConfig {
        epochs: args.get_usize("epochs")?.unwrap_or(400),
        sample_size: args.get_usize("sample-size")?.unwrap_or(200),
        seed: args.get_u64("seed")?.unwrap_or(42),
        ..CpGanConfig::default()
    };
    let mut model = CpGan::try_new(cfg).map_err(|e| e.to_string())?;
    let stats = model.fit(&g);
    let last = stats.last().ok_or("training produced no epochs")?;
    eprintln!(
        "trained {} epochs: d_loss {:.3}, g_loss {:.3}, recon {:.3}",
        stats.epochs.len(),
        last.d_loss,
        last.g_loss,
        last.recon_loss
    );
    model
        .save(&model_path)
        .map_err(|e| format!("cannot write {model_path}: {e}"))?;
    eprintln!("model saved to {model_path}");
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let model_path = args.require("model")?;
    let output = args.require("output")?;
    let model = CpGan::load(&model_path).map_err(|e| format!("cannot load {model_path}: {e}"))?;
    // Default to the trained graph's size when not overridden.
    let (def_n, def_m) = model
        .trained_shape()
        .ok_or("model is untrained; pass --nodes and --edges")
        .or_else(
            |e| match (args.get_usize("nodes"), args.get_usize("edges")) {
                (Ok(Some(n)), Ok(Some(m))) => Ok((n, m)),
                _ => Err(e.to_string()),
            },
        )?;
    let n = args.get_usize("nodes")?.unwrap_or(def_n);
    let m = args.get_usize("edges")?.unwrap_or(def_m);
    let mut rng = StdRng::seed_from_u64(args.get_u64("seed")?.unwrap_or(7));
    let out = model.generate(n, m, &mut rng);
    io::save(&out, &output).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "generated {} nodes / {} edges -> {output}",
        out.n(),
        out.m()
    );
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    let models = args.require("model")?;
    let mut registry = ModelRegistry::new();
    for path in models.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let name = registry.load_file(path).map_err(|e| e.to_string())?;
        let shape = registry
            .get(&name)
            .and_then(|m| m.trained_shape())
            .map(|(n, m)| format!("trained on {n} nodes / {m} edges"))
            .unwrap_or_else(|| "untrained".to_string());
        eprintln!("loaded model '{name}' from {path} ({shape})");
    }
    let cfg = ServeConfig {
        addr: args
            .get("addr")
            .unwrap_or_else(|| "127.0.0.1:8787".to_string()),
        workers: args.get_usize("workers")?.unwrap_or(0),
        queue_depth: args.get_usize("queue-depth")?.unwrap_or(64),
        deadline_ms: args.get_u64("deadline-ms")?.unwrap_or(5_000),
        gen_threads: args.get_usize("threads")?,
        idle_ms: args.get_u64("idle-ms")?.unwrap_or(5_000),
        // `--cache-mb 0` disables the generation cache entirely.
        cache_bytes: args.get_usize("cache-mb")?.unwrap_or(16) * 1024 * 1024,
        max_conns: args.get_usize("max-conns")?.unwrap_or(1024),
        ..ServeConfig::default()
    };
    // The metrics endpoint serves the merged cpgan-obs report; a server
    // without collection would serve an empty document forever.
    cpgan_obs::set_enabled(true);
    let server = Server::start(cfg, registry).map_err(|e| e.to_string())?;
    eprintln!(
        "cpgan-serve listening on http://{} ({} workers, queue {}); \
         POST /v1/generate, GET /v1/models /healthz /metrics",
        server.addr(),
        server.worker_count(),
        args.get_usize("queue-depth")?.unwrap_or(64),
    );
    server.wait();
    Ok(())
}

fn shard(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let g = load_graph(&input)?;
    eprintln!("observed graph: {} nodes, {} edges", g.n(), g.m());
    let model = CpGanConfig {
        epochs: args.get_usize("epochs")?.unwrap_or(20),
        sample_size: args.get_usize("sample-size")?.unwrap_or(60),
        ..CpGanConfig::tiny()
    };
    let cfg = cpgan_shard::ShardConfig {
        max_shard_size: args.get_usize("max-shard-size")?.unwrap_or(4000),
        memory_budget_bytes: args.get_usize("budget-mb")?.unwrap_or(256) << 20,
        model,
        seed: args.get_u64("seed")?.unwrap_or(42),
        ..cpgan_shard::ShardConfig::default()
    };
    let pipeline = cpgan_shard::ShardPipeline::new(cfg).map_err(|e| e.to_string())?;
    let report = pipeline.run(&g).map_err(|e| e.to_string())?;
    io::save(&report.graph, &output).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "sharded generation: {} shards in {} waves (largest {} nodes, \
         scheduled peak ~{} MiB)",
        report.shards,
        report.waves,
        report.max_shard_nodes,
        report.peak_estimate_bytes >> 20
    );
    eprintln!(
        "generated {} nodes / {} edges ({} intra + {} inter) -> {output}",
        report.graph.n(),
        report.graph.m(),
        report.intra_edges,
        report.inter_edges
    );
    Ok(())
}

fn show_stats(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let g = load_graph(&input)?;
    let s = stats::GraphStats::compute(&g, 128);
    let part = louvain::louvain(&g, 0);
    println!("nodes:            {}", s.n);
    println!("edges:            {}", s.m);
    println!("mean degree:      {:.4}", s.mean_degree);
    println!("CPL (≤128 seeds): {:.4}", s.cpl);
    println!("gini:             {:.4}", s.gini);
    println!("power-law exp:    {:.4}", s.pwe);
    println!("mean clustering:  {:.4}", s.mean_clustering);
    println!("louvain comms:    {}", part.community_count());
    Ok(())
}

fn eval(args: &Args) -> Result<(), String> {
    let observed = load_graph(&args.require("observed")?)?;
    let generated = load_graph(&args.require("generated")?)?;
    if observed.n() != generated.n() {
        return Err(format!(
            "node counts differ ({} vs {}); NMI/ARI need node-aligned graphs",
            observed.n(),
            generated.n()
        ));
    }
    let y = louvain::louvain(&observed, 0);
    let x = louvain::louvain(&generated, 0);
    println!("NMI:        {:.4}", metrics::nmi(x.labels(), y.labels()));
    println!(
        "ARI:        {:.4}",
        metrics::adjusted_rand_index(x.labels(), y.labels())
    );
    println!("deg MMD:    {:.5}", mmd::degree_mmd(&observed, &generated));
    println!(
        "clus MMD:   {:.5}",
        mmd::clustering_mmd(&observed, &generated)
    );
    let so = stats::GraphStats::compute(&observed, 128);
    let sg = stats::GraphStats::compute(&generated, 128);
    println!("CPL diff:   {:.4}", (so.cpl - sg.cpl).abs());
    println!("gini diff:  {:.4}", (so.gini - sg.gini).abs());
    println!("PWE diff:   {:.4}", (so.pwe - sg.pwe).abs());
    Ok(())
}
