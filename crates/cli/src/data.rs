//! `cpgan data` — the dataset registry subcommand.
//!
//! ```text
//! cpgan data list
//! cpgan data fetch  <name> [--data-dir DIR] [--offline]
//! cpgan data verify <name> [--data-dir DIR] [--offline] [--report PATH]
//! cpgan data stats  <name> [--data-dir DIR] [--offline]
//! cpgan data ingest <name> --output <edge-list> [--data-dir DIR] [--offline]
//! ```
//!
//! Unlike the other subcommands this one takes a positional action and
//! dataset name plus bare `--offline`, so it parses its own tokens
//! instead of going through `args::Args`. `--threads N` and
//! `--obs-out PATH` work here like everywhere else.

use cpgan_datasets::{fetch, load, registry, verify, Cache, FetchAction, LoadOptions};
use cpgan_graph::io;
use std::path::PathBuf;

/// Parsed `cpgan data` invocation.
struct DataArgs {
    action: String,
    names: Vec<String>,
    data_dir: Option<PathBuf>,
    offline: bool,
    report: Option<String>,
    output: Option<String>,
    scale: usize,
    seed: u64,
    threads: Option<usize>,
    obs_out: Option<String>,
}

fn parse(tokens: &[String]) -> Result<DataArgs, String> {
    let mut it = tokens.iter();
    let action = it.next().ok_or("data: missing action")?.clone();
    let mut args = DataArgs {
        action,
        names: Vec::new(),
        data_dir: None,
        offline: false,
        report: None,
        output: None,
        scale: 1,
        seed: 1,
        threads: None,
        obs_out: None,
    };
    while let Some(tok) = it.next() {
        let mut value = |key: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("data: flag --{key} needs a value"))
        };
        match tok.as_str() {
            "--offline" => args.offline = true,
            "--data-dir" => args.data_dir = Some(PathBuf::from(value("data-dir")?)),
            "--report" => args.report = Some(value("report")?),
            "--output" => args.output = Some(value("output")?),
            "--scale" => {
                let v = value("scale")?;
                args.scale = v
                    .parse()
                    .map_err(|e| format!("data: --scale: invalid number '{v}' ({e})"))?;
            }
            "--seed" => {
                let v = value("seed")?;
                args.seed = v
                    .parse()
                    .map_err(|e| format!("data: --seed: invalid number '{v}' ({e})"))?;
            }
            "--threads" => {
                let v = value("threads")?;
                args.threads = Some(
                    v.parse()
                        .map_err(|e| format!("data: --threads: invalid number '{v}' ({e})"))?,
                );
            }
            "--obs-out" => args.obs_out = Some(value("obs-out")?),
            flag if flag.starts_with("--") => {
                return Err(format!("data: unknown flag '{flag}'"));
            }
            name => args.names.push(name.to_string()),
        }
    }
    Ok(args)
}

fn options(args: &DataArgs) -> LoadOptions {
    LoadOptions {
        data_dir: args.data_dir.clone(),
        offline: args.offline,
        scale: args.scale,
        seed: args.seed,
        ..LoadOptions::default()
    }
}

/// Entry point, dispatched from `main` before the `--key value` parser.
pub fn run(tokens: &[String]) -> Result<(), String> {
    let args = parse(tokens)?;
    if args.obs_out.is_some() {
        cpgan_obs::set_enabled(true);
    }
    let dispatch = || match args.action.as_str() {
        "list" => list(&args),
        "fetch" => do_fetch(&args),
        "verify" => do_verify(&args),
        "stats" => do_stats(&args),
        "ingest" => do_ingest(&args),
        other => Err(format!("data: unknown action '{other}'")),
    };
    let result = match args.threads {
        Some(n) => cpgan_parallel::with_thread_count(n, dispatch),
        None => dispatch(),
    };
    cpgan_obs::finish(args.obs_out.as_deref());
    result
}

fn require_names(args: &DataArgs) -> Result<&[String], String> {
    if args.names.is_empty() {
        return Err(format!("data {}: missing dataset name", args.action));
    }
    Ok(&args.names)
}

fn list(args: &DataArgs) -> Result<(), String> {
    let cache = Cache::resolve(args.data_dir.as_deref());
    let cached = cache.scan().map_err(|e| e.to_string())?;
    println!(
        "{:<26} {:>8} {:>9}  {:<10} cached",
        "name", "nodes", "edges", "data"
    );
    for entry in registry::registry() {
        // `data` is the provenance class: real upstream files, an
        // in-repo surrogate fixture, or a load-time synthesizer.
        let cached = if !entry.is_file_backed() {
            "-"
        } else if cached.iter().any(|c| c == &entry.name) {
            "yes"
        } else {
            "no"
        };
        println!(
            "{:<26} {:>8} {:>9}  {:<10} {}",
            entry.name,
            entry.reference.n,
            entry.reference.m,
            entry.data.label(),
            cached
        );
    }
    Ok(())
}

fn do_fetch(args: &DataArgs) -> Result<(), String> {
    let cache = Cache::resolve(args.data_dir.as_deref());
    for name in require_names(args)? {
        let entry = registry::resolve(name).map_err(|e| e.to_string())?;
        let outcomes = fetch(entry, &cache, args.offline).map_err(|e| e.to_string())?;
        if outcomes.is_empty() {
            println!("{name}: synthesized at load time (nothing to fetch)");
        }
        for o in outcomes {
            let what = match o.action {
                FetchAction::AlreadyCached => "cached, checksum ok",
                FetchAction::CopiedFixture => "copied from fixtures, checksum ok",
            };
            println!(
                "{name}: {} -> {} ({what})",
                o.file,
                cache.file_path(&entry.name, &o.file).display()
            );
        }
    }
    Ok(())
}

fn do_verify(args: &DataArgs) -> Result<(), String> {
    let opts = options(args);
    let mut reports = Vec::new();
    let mut all_pass = true;
    for name in require_names(args)? {
        let entry = registry::resolve(name).map_err(|e| e.to_string())?;
        let loaded = load(entry, &opts).map_err(|e| e.to_string())?;
        let report = verify::verify(entry, &loaded.graph, verify::DEFAULT_CPL_SOURCES);
        print!("{}", report.render());
        all_pass &= report.passed();
        reports.push(report);
    }
    if let Some(path) = &args.report {
        let json: Vec<String> = reports.iter().map(verify::VerifyReport::to_json).collect();
        std::fs::write(path, format!("[{}]\n", json.join(",")))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    if all_pass {
        Ok(())
    } else {
        Err("data verify: one or more checks failed".to_string())
    }
}

fn do_stats(args: &DataArgs) -> Result<(), String> {
    let opts = options(args);
    for name in require_names(args)? {
        let entry = registry::resolve(name).map_err(|e| e.to_string())?;
        let loaded = load(entry, &opts).map_err(|e| e.to_string())?;
        let s = cpgan_graph::stats::GraphStats::compute(&loaded.graph, 128);
        println!("{name} ({}):", loaded.title);
        println!("  nodes:            {}", s.n);
        println!("  edges:            {}", s.m);
        println!("  mean degree:      {:.4}", s.mean_degree);
        println!("  CPL (≤128 seeds): {:.4}", s.cpl);
        println!("  gini:             {:.4}", s.gini);
        println!("  power-law exp:    {:.4}", s.pwe);
        if let Some(ing) = &loaded.ingest {
            println!(
                "  ingest:           {} raw edges, {} self-loops seen ({} dropped), {} duplicates merged",
                ing.raw_edges, ing.self_loops_seen, ing.self_loops_dropped, ing.duplicates_merged
            );
        }
        if let Some(labels) = &loaded.node_labels {
            let labeled = labels.iter().filter(|l| !l.is_empty()).count();
            println!("  labeled nodes:    {labeled}");
        }
    }
    Ok(())
}

fn do_ingest(args: &DataArgs) -> Result<(), String> {
    let output = args
        .output
        .as_deref()
        .ok_or("data ingest: missing --output")?;
    let opts = options(args);
    let names = require_names(args)?;
    if names.len() != 1 {
        return Err("data ingest: exactly one dataset name expected".to_string());
    }
    let entry = registry::resolve(&names[0]).map_err(|e| e.to_string())?;
    let loaded = load(entry, &opts).map_err(|e| e.to_string())?;
    io::save(&loaded.graph, output).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "ingested {}: {} nodes / {} edges -> {output}",
        loaded.name,
        loaded.graph.n(),
        loaded.graph.m()
    );
    Ok(())
}
