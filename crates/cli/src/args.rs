//! Minimal `--key value` argument parsing (no external dependency).

use std::collections::HashMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses alternating `--key value` tokens; rejects stray positionals
    /// and flags without values.
    pub fn parse(tokens: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut it = tokens.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{tok}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            values.insert(key.to_string(), value.clone());
        }
        Ok(Args { values })
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }

    /// An optional usize flag.
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, String> {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .map_err(|e| format!("flag --{key}: invalid number '{v}' ({e})"))
            })
            .transpose()
    }

    /// An optional u64 flag.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, String> {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .map_err(|e| format!("flag --{key}: invalid number '{v}' ({e})"))
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&toks(&["--input", "g.txt", "--epochs", "10"])).unwrap();
        assert_eq!(a.require("input").unwrap(), "g.txt");
        assert_eq!(a.get_usize("epochs").unwrap(), Some(10));
        assert_eq!(a.get_usize("absent").unwrap(), None);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&toks(&["positional"])).is_err());
        assert!(Args::parse(&toks(&["--flag"])).is_err());
        let a = Args::parse(&toks(&["--epochs", "abc"])).unwrap();
        assert!(a.get_usize("epochs").is_err());
        assert!(a.require("missing").is_err());
    }
}
