//! End-to-end tests of the `cpgan` binary: fit -> generate -> eval.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cpgan")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cpgan_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn write_demo_graph(path: &PathBuf) {
    // Three 20-node communities with dense interiors and two bridges.
    let mut text = String::from("# nodes: 60\n");
    for c in 0..3u32 {
        let base = c * 20;
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                if (a + b) % 3 != 0 {
                    text.push_str(&format!("{} {}\n", base + a, base + b));
                }
            }
        }
        text.push_str(&format!("{} {}\n", base, (base + 20) % 60));
    }
    std::fs::write(path, text).expect("write demo graph");
}

#[test]
fn stats_subcommand_reports_counts() {
    let graph = tmp("stats_graph.txt");
    write_demo_graph(&graph);
    let out = Command::new(bin())
        .args(["stats", "--input", graph.to_str().unwrap()])
        .output()
        .expect("run cpgan stats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nodes:            60"), "{stdout}");
    assert!(stdout.contains("louvain comms:    3"), "{stdout}");
}

#[test]
fn fit_generate_eval_round_trip() {
    let graph = tmp("pipeline_graph.txt");
    let model = tmp("pipeline_model.json");
    let generated = tmp("pipeline_gen.txt");
    write_demo_graph(&graph);

    let fit = Command::new(bin())
        .args([
            "fit",
            "--input",
            graph.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--epochs",
            "10",
            "--sample-size",
            "60",
        ])
        .output()
        .expect("run cpgan fit");
    assert!(
        fit.status.success(),
        "{}",
        String::from_utf8_lossy(&fit.stderr)
    );
    assert!(model.exists());

    let gen = Command::new(bin())
        .args([
            "generate",
            "--model",
            model.to_str().unwrap(),
            "--output",
            generated.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .expect("run cpgan generate");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let eval = Command::new(bin())
        .args([
            "eval",
            "--observed",
            graph.to_str().unwrap(),
            "--generated",
            generated.to_str().unwrap(),
        ])
        .output()
        .expect("run cpgan eval");
    assert!(
        eval.status.success(),
        "{}",
        String::from_utf8_lossy(&eval.stderr)
    );
    let stdout = String::from_utf8_lossy(&eval.stdout);
    assert!(stdout.contains("NMI:"), "{stdout}");
    assert!(stdout.contains("deg MMD:"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("run cpgan frobnicate");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_flag_reports_which() {
    let out = Command::new(bin())
        .args(["fit", "--input", "nope.txt"])
        .output()
        .expect("run cpgan fit without model");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--model"), "{stderr}");
}
