//! CPGAN configuration (paper §IV-A parameter settings, scaled for CPU).

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Ablation variants evaluated in Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The full model.
    Full,
    /// "CPGAN-C": replace the GRU node decoding with a concatenation + MLP.
    ConcatDecoder,
    /// "CPGAN-noV": skip the variational inference module.
    NoVariational,
    /// "CPGAN-noH": no hierarchical pooling (single-level encoder).
    NoHierarchy,
}

impl Variant {
    /// Row label used in the ablation table.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "CPGAN",
            Variant::ConcatDecoder => "CPGAN-C",
            Variant::NoVariational => "CPGAN-noV",
            Variant::NoHierarchy => "CPGAN-noH",
        }
    }
}

/// Hyper-parameters of CPGAN.
///
/// Paper defaults: conv kernel 128, pooling size 256, lr 0.001 with decay
/// 0.3 / 400 epochs, spectral input dimension 4, two hierarchy levels
/// (Figure 5). The CPU defaults here shrink widths but keep every ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpGanConfig {
    /// Ablation variant.
    pub variant: Variant,
    /// Spectral-embedding input dimension (Figure 5 sweeps this; the paper
    /// settles on 4 with a 128-wide encoder — our narrower CPU encoder
    /// benefits from 16, see EXPERIMENTS.md).
    pub spectral_dim: usize,
    /// GCN kernel width (paper: 128).
    pub hidden_dim: usize,
    /// Latent dimension `d'` of the variational module.
    pub latent_dim: usize,
    /// Number of hierarchy levels `k` (Figure 5 sweeps this; best 2).
    pub levels: usize,
    /// Graph-convolution blocks stacked per level before pooling (the
    /// paper's "stacked convolution and pooling layers", §III-C).
    pub convs_per_level: usize,
    /// Nodes per coarsened level, as a fraction of the previous level
    /// (paper uses a fixed pooling size 256 on large graphs; a ratio keeps
    /// small CPU graphs meaningful).
    pub pool_ratio: f64,
    /// Hard cap on any pooled level's size (the paper's 256).
    pub max_pool_size: usize,
    /// Subgraph sample size `n_s` used during training and assembly.
    pub sample_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Learning-rate decay factor (paper: 0.3).
    pub lr_decay: f32,
    /// Epochs between decays (paper: 400).
    pub lr_decay_every: usize,
    /// PairNorm scale.
    pub pairnorm_scale: f32,
    /// Weight of the clustering-consistency loss `L_clus`.
    pub clus_weight: f32,
    /// Weight of the mapping-consistency loss `L_rec`.
    pub rec_weight: f32,
    /// Weight of the KL prior loss.
    pub kl_weight: f32,
    /// Weight of the adversarial terms in the generator objective.
    pub adv_weight: f32,
    /// Weight of the adjacency reconstruction likelihood (Eq. 14's
    /// `p(A_rec | Z_vae)` term of the hierarchical VAE generator).
    pub recon_weight: f32,
    /// RNG seed for initialization, sampling and Louvain ground truth.
    pub seed: u64,
}

impl Default for CpGanConfig {
    fn default() -> Self {
        CpGanConfig {
            variant: Variant::Full,
            spectral_dim: 16,
            hidden_dim: 32,
            latent_dim: 16,
            levels: 2,
            convs_per_level: 2,
            pool_ratio: 0.25,
            max_pool_size: 256,
            sample_size: 200,
            epochs: 400,
            learning_rate: 1e-3,
            lr_decay: 0.3,
            lr_decay_every: 400,
            pairnorm_scale: 1.0,
            clus_weight: 1.0,
            rec_weight: 0.1,
            kl_weight: 0.01,
            adv_weight: 0.05,
            recon_weight: 2.0,
            seed: 42,
        }
    }
}

impl CpGanConfig {
    /// A lighter configuration for unit tests and doctests.
    pub fn tiny() -> Self {
        CpGanConfig {
            hidden_dim: 16,
            latent_dim: 8,
            sample_size: 60,
            epochs: 20,
            ..Default::default()
        }
    }

    /// Validates every field, returning the first offending one.
    ///
    /// Called by [`crate::CpGan::try_new`] and the module `try_new`
    /// constructors so deserialized configurations fail with a typed error
    /// instead of a panic deep inside layer construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = [
            ("spectral_dim", self.spectral_dim),
            ("hidden_dim", self.hidden_dim),
            ("latent_dim", self.latent_dim),
            ("levels", self.levels),
            ("convs_per_level", self.convs_per_level),
            ("epochs", self.epochs),
            ("lr_decay_every", self.lr_decay_every),
        ];
        for (field, value) in positive {
            if value == 0 {
                return Err(ConfigError::new(field, "must be at least 1"));
            }
        }
        if !(self.pool_ratio > 0.0 && self.pool_ratio <= 1.0) {
            return Err(ConfigError::new(
                "pool_ratio",
                format!("must lie in (0, 1], got {}", self.pool_ratio),
            ));
        }
        if self.max_pool_size < 2 {
            return Err(ConfigError::new("max_pool_size", "must be at least 2"));
        }
        if self.sample_size < 2 {
            return Err(ConfigError::new("sample_size", "must be at least 2"));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(ConfigError::new(
                "learning_rate",
                format!("must be positive and finite, got {}", self.learning_rate),
            ));
        }
        if !(self.lr_decay > 0.0 && self.lr_decay <= 1.0) {
            return Err(ConfigError::new(
                "lr_decay",
                format!("must lie in (0, 1], got {}", self.lr_decay),
            ));
        }
        if !(self.pairnorm_scale > 0.0 && self.pairnorm_scale.is_finite()) {
            return Err(ConfigError::new(
                "pairnorm_scale",
                format!("must be positive and finite, got {}", self.pairnorm_scale),
            ));
        }
        let weights = [
            ("clus_weight", self.clus_weight),
            ("rec_weight", self.rec_weight),
            ("kl_weight", self.kl_weight),
            ("adv_weight", self.adv_weight),
            ("recon_weight", self.recon_weight),
        ];
        for (field, value) in weights {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(ConfigError::new(
                    field,
                    format!("must be non-negative and finite, got {value}"),
                ));
            }
        }
        Ok(())
    }

    /// Effective number of levels after applying the ablation variant.
    pub fn effective_levels(&self) -> usize {
        match self.variant {
            Variant::NoHierarchy => 1,
            _ => self.levels.max(1),
        }
    }

    /// Pooled sizes for a graph of `n` nodes: level l has
    /// `min(max_pool_size, ceil(n * ratio^l))` nodes, min 2.
    pub fn pool_sizes(&self, n: usize) -> Vec<usize> {
        let levels = self.effective_levels();
        let mut sizes = Vec::with_capacity(levels.saturating_sub(1));
        let mut current = n as f64;
        for _ in 1..levels {
            current *= self.pool_ratio;
            let size = (current.ceil() as usize).clamp(2, self.max_pool_size);
            sizes.push(size);
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_shrink() {
        let cfg = CpGanConfig {
            levels: 3,
            pool_ratio: 0.25,
            ..Default::default()
        };
        assert_eq!(cfg.pool_sizes(400), vec![100, 25]);
    }

    #[test]
    fn pool_sizes_capped() {
        let cfg = CpGanConfig {
            levels: 2,
            pool_ratio: 0.5,
            max_pool_size: 64,
            ..Default::default()
        };
        assert_eq!(cfg.pool_sizes(10_000), vec![64]);
    }

    #[test]
    fn no_hierarchy_means_one_level() {
        let cfg = CpGanConfig {
            variant: Variant::NoHierarchy,
            levels: 3,
            ..Default::default()
        };
        assert_eq!(cfg.effective_levels(), 1);
        assert!(cfg.pool_sizes(100).is_empty());
    }

    #[test]
    fn validate_accepts_defaults_and_tiny() {
        assert!(CpGanConfig::default().validate().is_ok());
        assert!(CpGanConfig::tiny().validate().is_ok());
    }

    #[test]
    fn validate_names_the_offending_field() {
        let bad = CpGanConfig {
            hidden_dim: 0,
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert_eq!(err.field, "hidden_dim");

        let bad = CpGanConfig {
            pool_ratio: 0.0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "pool_ratio");

        let bad = CpGanConfig {
            learning_rate: f32::NAN,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "learning_rate");

        let bad = CpGanConfig {
            kl_weight: -0.5,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "kl_weight");
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::Full.label(), "CPGAN");
        assert_eq!(Variant::ConcatDecoder.label(), "CPGAN-C");
        assert_eq!(Variant::NoVariational.label(), "CPGAN-noV");
        assert_eq!(Variant::NoHierarchy.label(), "CPGAN-noH");
    }
}
