//! Ladder message-transmission encoder (paper §III-C).
//!
//! Stacks graph convolutions (Eq. 6) with DiffPool-style differentiable
//! pooling (Eq. 7–8), PairNorm after every convolution, graph readout
//! (Eq. 9) and transposed pooling for hierarchical message distribution
//! (Eq. 10–11).

use crate::config::CpGanConfig;
use crate::error::{model_panic, ModelError};
use cpgan_nn::layers::{GcnConv, PairNorm};
use cpgan_nn::{Csr, FusedAct, ParamStore, Tape, Var};
use rand::Rng;
use std::sync::Arc;

/// The adjacency operator fed to the encoder: sparse for observed graphs,
/// dense (and differentiable) for generated probability matrices.
#[derive(Clone)]
pub enum AdjInput {
    /// Constant normalized adjacency of an observed graph.
    Sparse(Arc<Csr>),
    /// A dense, possibly gradient-carrying operator (reconstructed graphs
    /// feeding the discriminator).
    Dense(Var),
}

/// Everything the rest of CPGAN needs from one encoder pass.
pub struct EncoderOutput {
    /// Per-level node representations `Z^(l)` (`n_l x hidden`).
    pub z_levels: Vec<Var>,
    /// Per-level representations distributed back to the original nodes
    /// (`n x hidden` each) — Eq. 11's `Z_rec` stack.
    pub z_rec: Vec<Var>,
    /// Assignment matrices `S^(l)` (`n_l x n_{l+1}`), softmaxed.
    pub assignments: Vec<Var>,
    /// Assignments composed down to original nodes (`n x n_{l+1}`), used by
    /// the clustering-consistency loss.
    pub assignments_composed: Vec<Var>,
    /// Graph readout `s` (`k x hidden`), one row per level (Eq. 9).
    pub readout: Var,
    /// Readout flattened to `1 x (k * hidden)` for the discriminator MLP.
    pub readout_flat: Var,
}

/// The ladder encoder.
#[derive(Debug, Clone)]
pub struct LadderEncoder {
    /// `convs_per_level` stacked embedding convolutions per level.
    convs_embed: Vec<Vec<GcnConv>>,
    convs_pool: Vec<GcnConv>,
    convs_depool: Vec<GcnConv>,
    pairnorm: PairNorm,
    levels: usize,
    hidden: usize,
}

impl LadderEncoder {
    /// Builds the encoder; pooled level widths are fixed from
    /// `cfg.pool_sizes(cfg.sample_size)` so the same parameters serve any
    /// input graph size.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: &CpGanConfig) -> Self {
        Self::try_new(store, rng, cfg).unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`LadderEncoder::new`]: validates the configuration first.
    pub fn try_new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: &CpGanConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        let levels = cfg.effective_levels();
        let pool_sizes = cfg.pool_sizes(cfg.sample_size);
        let mut convs_embed = Vec::with_capacity(levels);
        let mut convs_pool = Vec::with_capacity(levels.saturating_sub(1));
        let mut convs_depool = Vec::with_capacity(levels.saturating_sub(1));
        // +1: the degree feature column appended by the model.
        let mut in_dim = cfg.spectral_dim + 1;
        let depth = cfg.convs_per_level.max(1);
        for l in 0..levels {
            let mut stack = Vec::with_capacity(depth);
            let mut d = in_dim;
            for _ in 0..depth {
                stack.push(GcnConv::new(store, rng, d, cfg.hidden_dim));
                d = cfg.hidden_dim;
            }
            convs_embed.push(stack);
            if let Some(&out_nodes) = pool_sizes.get(l) {
                convs_pool.push(GcnConv::new(store, rng, cfg.hidden_dim, out_nodes));
                convs_depool.push(GcnConv::new(store, rng, cfg.hidden_dim, out_nodes));
            }
            in_dim = cfg.hidden_dim;
        }
        Ok(LadderEncoder {
            convs_embed,
            convs_pool,
            convs_depool,
            pairnorm: PairNorm::new(cfg.pairnorm_scale),
            levels,
            hidden: cfg.hidden_dim,
        })
    }

    /// Number of hierarchy levels `k`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Hidden width per level.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn conv(&self, tape: &Tape, conv: &GcnConv, adj: &AdjInput, x: &Var) -> Var {
        match adj {
            AdjInput::Sparse(csr) => conv.forward_sparse(tape, csr, x),
            AdjInput::Dense(a) => conv.forward_dense(tape, a, x),
        }
    }

    /// Full encoder pass (Eq. 6–11).
    pub fn encode(&self, tape: &Tape, adj: &AdjInput, features: &Var) -> EncoderOutput {
        let mut z_levels = Vec::with_capacity(self.levels);
        let mut z_rec = Vec::with_capacity(self.levels);
        let mut assignments = Vec::with_capacity(self.levels.saturating_sub(1));
        let mut assignments_composed = Vec::with_capacity(self.levels.saturating_sub(1));

        let mut cur_adj = adj.clone();
        let mut cur_x = features.clone();
        // Running product of transposed depool assignments mapping level-l
        // space back to original nodes (Eq. 11).
        let mut distribute: Option<Var> = None;
        // Running product of pooling assignments mapping original nodes to
        // the current level (for L_clus supervision).
        let mut compose: Option<Var> = None;

        for l in 0..self.levels {
            // Z^(l) = PairNorm(ReLU(GCN_embed(...))) stacked convs_per_level
            // deep (PairNorm after every block prevents over-smoothing,
            // §III-C2).
            let mut z = cur_x.clone();
            for conv in &self.convs_embed[l] {
                // Sparse level: fused spmm+relu (bit-identical to the
                // composed chain, one pass over the output); dense pooled
                // levels keep the composed path.
                let h = match &cur_adj {
                    AdjInput::Sparse(csr) => {
                        conv.forward_sparse_fused(tape, csr, &z, FusedAct::Relu)
                    }
                    AdjInput::Dense(a) => conv.forward_dense(tape, a, &z).relu(),
                };
                z = self.pairnorm.forward(tape, &h);
            }
            z_levels.push(z.clone());

            // Distribute to original nodes.
            let rec = match &distribute {
                None => z.clone(),
                Some(d) => d.matmul(&z),
            };
            z_rec.push(rec);

            if l + 1 < self.levels {
                // S^(l) = softmax(GCN_pool(Z, A)) (Eq. 7).
                let s = self
                    .conv(tape, &self.convs_pool[l], &cur_adj, &z)
                    .softmax_rows();
                assignments.push(s.clone());
                let composed = match &compose {
                    None => s.clone(),
                    Some(c) => c.matmul(&s),
                };
                assignments_composed.push(composed.clone());
                compose = Some(composed);

                // S_depool^(l) = softmax(GCN_depool(Z, A)^T) (Eq. 10); its
                // transpose maps coarse rows back to fine rows.
                let s_dep_t = self
                    .conv(tape, &self.convs_depool[l], &cur_adj, &z)
                    .transpose()
                    .softmax_rows()
                    .transpose();
                distribute = Some(match &distribute {
                    None => s_dep_t.clone(),
                    Some(d) => d.matmul(&s_dep_t),
                });

                // Coarsen: A' = S^T A S, X' = S^T Z (Eq. 8).
                let a_s = match &cur_adj {
                    AdjInput::Sparse(csr) => s.spmm(csr),
                    AdjInput::Dense(a) => a.matmul(&s),
                };
                let a_next = s.transpose().matmul(&a_s);
                let x_next = s.transpose().matmul(&z);
                cur_adj = AdjInput::Dense(a_next);
                cur_x = x_next;
            }
        }

        // Readout: mean row per level, stacked (Eq. 9).
        let means: Vec<Var> = z_levels.iter().map(|z| z.mean_rows()).collect();
        let readout = Var::concat_rows(&means);
        let readout_flat = Var::concat_cols(&means);

        EncoderOutput {
            z_levels,
            z_rec,
            assignments,
            assignments_composed,
            readout,
            readout_flat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_graph::{spectral, Graph};
    use cpgan_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph() -> Graph {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                if (u + v) % 3 != 0 {
                    edges.push((u, v));
                    edges.push((u + 10, v + 10));
                }
            }
        }
        edges.push((0, 10));
        Graph::from_edges(20, edges).unwrap()
    }

    fn cfg() -> CpGanConfig {
        CpGanConfig {
            sample_size: 20,
            hidden_dim: 8,
            spectral_dim: 4,
            levels: 2,
            pool_ratio: 0.25,
            ..CpGanConfig::tiny()
        }
    }

    /// Spectral embedding plus a degree column, matching the model's
    /// feature map (encoder input width is spectral_dim + 1).
    fn test_features(g: &Graph, d: usize) -> Matrix {
        let spec = spectral::spectral_embedding(g, d, 7);
        Matrix::from_fn(g.n(), d + 1, |r, c| {
            if c < d {
                spec[r * d + c]
            } else {
                (g.degree(r as u32) as f32 + 1.0).ln()
            }
        })
    }

    fn encode_once(cfg: &CpGanConfig, g: &Graph) -> (EncoderOutput, Tape) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = LadderEncoder::new(&mut store, &mut rng, cfg);
        let tape = Tape::new();
        let x = tape.constant(test_features(g, cfg.spectral_dim));
        let adj = AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(g)));
        let out = enc.encode(&tape, &adj, &x);
        (out, tape)
    }

    #[test]
    fn shapes_follow_pooling_schedule() {
        let cfg = cfg();
        let g = test_graph();
        let (out, _tape) = encode_once(&cfg, &g);
        assert_eq!(out.z_levels.len(), 2);
        assert_eq!(out.z_levels[0].shape(), (20, 8));
        assert_eq!(out.z_levels[1].shape(), (5, 8)); // 20 * 0.25
        assert_eq!(out.z_rec[1].shape(), (20, 8));
        assert_eq!(out.assignments[0].shape(), (20, 5));
        assert_eq!(out.readout.shape(), (2, 8));
        assert_eq!(out.readout_flat.shape(), (1, 16));
    }

    #[test]
    fn assignments_are_row_stochastic() {
        let (out, _tape) = encode_once(&cfg(), &test_graph());
        let s = out.assignments[0].value();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn readout_is_permutation_invariant() {
        // Permuting nodes (and permuting features consistently) must leave
        // the readout unchanged (paper Eq. 5).
        let cfg = cfg();
        let g = test_graph();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = LadderEncoder::new(&mut store, &mut rng, &cfg);

        let x_mat = test_features(&g, cfg.spectral_dim);

        let tape1 = Tape::new();
        let out1 = enc.encode(
            &tape1,
            &AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(&g))),
            &tape1.constant(x_mat.clone()),
        );
        let r1 = out1.readout.value();

        // Reverse permutation.
        let perm: Vec<u32> = (0..g.n() as u32).rev().collect();
        let pg = g.permute(&perm);
        let mut px = Matrix::zeros(g.n(), cfg.spectral_dim + 1);
        for (v, &pv) in perm.iter().enumerate() {
            px.row_mut(pv as usize).copy_from_slice(x_mat.row(v));
        }
        let tape2 = Tape::new();
        let out2 = enc.encode(
            &tape2,
            &AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(&pg))),
            &tape2.constant(px),
        );
        let r2 = out2.readout.value();

        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            assert!((a - b).abs() < 1e-4, "readout changed under permutation");
        }
    }

    #[test]
    fn gradients_reach_every_encoder_parameter() {
        let cfg = cfg();
        let g = test_graph();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = LadderEncoder::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let x = tape.constant(test_features(&g, cfg.spectral_dim));
        let adj = AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(&g)));
        let out = enc.encode(&tape, &adj, &x);
        // Touch every output head so all parameter paths are exercised.
        let loss = out
            .readout_flat
            .square()
            .sum_all()
            .add(&out.z_rec.last().unwrap().square().sum_all())
            .add(&out.assignments_composed[0].square().sum_all());
        loss.backward();
        for (i, p) in store.params().iter().enumerate() {
            assert!(
                p.lock().grad.frobenius_norm() > 0.0,
                "encoder param {i} received no gradient"
            );
        }
    }

    #[test]
    fn single_level_variant_has_no_pooling() {
        let mut cfg = cfg();
        cfg.variant = crate::config::Variant::NoHierarchy;
        let (out, _tape) = encode_once(&cfg, &test_graph());
        assert_eq!(out.z_levels.len(), 1);
        assert!(out.assignments.is_empty());
        assert_eq!(out.readout.shape(), (1, 8));
    }
}
