//! Graph discriminator (paper §III-F1, Eq. 15).
//!
//! A two-layer MLP over the flattened encoder readout. Outputs a logit;
//! training losses use the numerically stable BCE-with-logits form of the
//! minimax objective (Eq. 16).

use crate::config::CpGanConfig;
use crate::error::{model_panic, ModelError};
use cpgan_nn::layers::{Activation, Mlp};
use cpgan_nn::{ParamStore, Tape, Var};
use rand::Rng;

/// The discriminator head `D_phi`.
#[derive(Debug, Clone)]
pub struct Discriminator {
    mlp: Mlp,
}

impl Discriminator {
    /// Builds the head; input width is `levels * hidden` (the flattened
    /// readout).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: &CpGanConfig) -> Self {
        Self::try_new(store, rng, cfg).unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`Discriminator::new`]: validates the configuration first.
    pub fn try_new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: &CpGanConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        let in_dim = cfg.effective_levels() * cfg.hidden_dim;
        Ok(Discriminator {
            mlp: Mlp::new(store, rng, &[in_dim, cfg.hidden_dim, 1], Activation::Relu),
        })
    }

    /// Real/fake logit from a flattened readout (`1 x (k*hidden)`).
    pub fn logit(&self, tape: &Tape, readout_flat: &Var) -> Var {
        self.mlp.forward(tape, readout_flat)
    }

    /// Probability the input is a real graph.
    pub fn probability(&self, tape: &Tape, readout_flat: &Var) -> Var {
        self.logit(tape, readout_flat).sigmoid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn logit_scalar_and_trainable() {
        let cfg = CpGanConfig {
            hidden_dim: 8,
            levels: 2,
            ..CpGanConfig::tiny()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let d = Discriminator::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let readout = tape.constant(Matrix::from_fn(1, 16, |_, c| (c as f32 * 0.2).sin()));
        let logit = d.logit(&tape, &readout);
        assert_eq!(logit.shape(), (1, 1));
        let p = d.probability(&tape, &readout).item();
        assert!((0.0..=1.0).contains(&p));
        logit.backward();
        assert!(store
            .params()
            .iter()
            .any(|p| p.lock().grad.frobenius_norm() > 0.0));
    }
}
