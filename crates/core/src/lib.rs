#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # CPGAN — Community-Preserving Generative Adversarial Network
//!
//! A from-scratch Rust reproduction of *"Efficient Learning-based
//! Community-Preserving Graph Generation"* (ICDE 2022). CPGAN couples a
//! ladder graph-convolution encoder with differentiable pooling (§III-C), a
//! variational inference module (§III-D), a GRU + dot-product link decoder
//! (§III-E) and an adversarial discriminator sharing the encoder (§III-F),
//! trained on degree-proportionally sampled subgraphs for scalability.
//!
//! ```no_run
//! use cpgan::{CpGan, CpGanConfig};
//! use cpgan_graph::Graph;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let observed = Graph::from_edges(100, (0..99u32).map(|i| (i, i + 1))).unwrap();
//! let mut model = CpGan::new(CpGanConfig::default());
//! model.fit(&observed);
//! let mut rng = StdRng::seed_from_u64(0);
//! let generated = model.generate(observed.n(), observed.m(), &mut rng);
//! assert_eq!(generated.n(), 100);
//! ```

pub mod assembly;
pub mod config;
pub mod decoder;
pub mod discriminator;
pub mod encoder;
pub mod error;
pub mod model;
pub mod persist;
pub mod sampling;
pub mod vi;

pub use config::{CpGanConfig, Variant};
pub use error::{ConfigError, ModelError};
pub use model::{CpGan, EpochStats, TrainStats};
