//! Degree-proportional subgraph sampling (paper §III-E).
//!
//! The implementation lives in [`cpgan_graph::sampling`] so the deep
//! baselines (which do not depend on this crate) can share the exact same
//! seeded stream; this module re-exports it under the historical path.

pub use cpgan_graph::sampling::{
    sample_nodes_by_degree, sample_nodes_uniform, sample_subgraph, SubgraphSampler,
};
