//! Assembling full graphs from generated subgraph probabilities
//! (paper §III-G).
//!
//! The paper fills an empty `A_out` with edges generated in sampled
//! subgraphs until the target edge count is met, using a two-step strategy
//! that avoids both dropped low-degree nodes (pure thresholding) and high
//! variance (pure Bernoulli sampling):
//!
//! 1. for every node `i`, sample one edge from the categorical distribution
//!    given by row `i` of the probability matrix;
//! 2. fill the remainder with the globally largest probability entries.

use cpgan_graph::{Graph, GraphBuilder, NodeId};
use cpgan_nn::Matrix;
use rand::Rng;

/// Incrementally assembles an `n`-node graph with a target edge count.
#[derive(Debug)]
pub struct GraphAssembler {
    n: usize,
    target_m: usize,
    edges: std::collections::HashSet<(NodeId, NodeId)>,
    /// Nodes that already received their step-1 categorical edge; the
    /// low-degree guarantee is per node over the whole assembly, not per
    /// subgraph.
    seeded: std::collections::HashSet<NodeId>,
    /// Current degree per node.
    degree: Vec<usize>,
    /// Optional per-node degree budgets (top-k skips nodes at budget so the
    /// generated degree sequence tracks the observed one).
    budgets: Option<Vec<usize>>,
}

impl GraphAssembler {
    /// Creates an assembler for `n` nodes aiming at `target_m` edges.
    pub fn new(n: usize, target_m: usize) -> Self {
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        GraphAssembler {
            n,
            target_m: target_m.min(max),
            edges: std::collections::HashSet::with_capacity(target_m.min(max) * 2),
            seeded: std::collections::HashSet::new(),
            degree: vec![0; n],
            budgets: None,
        }
    }

    /// Sets per-node degree budgets (typically the observed degrees, padded
    /// slightly): the top-k step skips nodes that reached their budget, so
    /// the generated degree sequence tracks the target. The categorical
    /// seeding step ignores budgets so no node is starved.
    pub fn with_degree_budgets(mut self, budgets: Vec<usize>) -> Self {
        assert_eq!(budgets.len(), self.n, "budget per node required");
        self.budgets = Some(budgets);
        self
    }

    /// Edges placed so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the target edge count has been reached.
    pub fn is_complete(&self) -> bool {
        self.edges.len() >= self.target_m
    }

    /// Remaining edges to place.
    pub fn remaining(&self) -> usize {
        self.target_m - self.edges.len().min(self.target_m)
    }

    fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.is_complete() {
            return false;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if self.edges.insert(key) {
            self.degree[u as usize] += 1;
            self.degree[v as usize] += 1;
            true
        } else {
            false
        }
    }

    fn over_budget(&self, v: NodeId) -> bool {
        self.budgets
            .as_ref()
            .is_some_and(|b| self.degree[v as usize] >= b[v as usize])
    }

    /// Merges one generated subgraph. `nodes[i]` is the global id of local
    /// row `i`; `probs` is the local `n_s x n_s` link-probability matrix.
    /// At most `budget` edges are taken from this subgraph. Returns the
    /// number of edges actually added.
    pub fn add_subgraph<R: Rng>(
        &mut self,
        nodes: &[NodeId],
        probs: &Matrix,
        budget: usize,
        rng: &mut R,
    ) -> usize {
        let ns = nodes.len();
        assert_eq!(probs.shape(), (ns, ns), "probability matrix shape");
        let budget = budget.min(self.remaining());
        let mut added = 0usize;

        // Step 1: one categorical edge per node (once over the whole
        // assembly) — guarantees low-degree nodes are not starved by global
        // thresholding.
        for i in 0..ns {
            if added >= budget {
                break;
            }
            if self.seeded.contains(&nodes[i]) {
                continue;
            }
            let row = probs.row(i);
            // Prefer under-budget picks so repeated categorical seeds cannot
            // inflate one node far past its degree budget; fall back to the
            // unrestricted row when everything is saturated.
            let allowed = |j: usize| j != i && !self.over_budget(nodes[j]);
            let mut total: f32 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| allowed(j))
                .map(|(_, &p)| p)
                .sum();
            let restricted = total > 0.0;
            if !restricted {
                total = row
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .sum();
            }
            if total <= 0.0 {
                continue;
            }
            let mut x = rng.gen::<f32>() * total;
            let mut pick = usize::MAX;
            for (j, &p) in row.iter().enumerate() {
                if j == i || (restricted && !allowed(j)) {
                    continue;
                }
                x -= p;
                if x <= 0.0 {
                    pick = j;
                    break;
                }
            }
            if pick != usize::MAX {
                self.seeded.insert(nodes[i]);
                if self.insert(nodes[i], nodes[pick]) {
                    added += 1;
                }
            }
        }

        // Step 2: top entries of the upper triangle until the budget is hit.
        if added < budget {
            let mut entries: Vec<(f32, usize, usize)> = Vec::with_capacity(ns * ns / 2);
            for i in 0..ns {
                for j in (i + 1)..ns {
                    entries.push((probs.get(i, j), i, j));
                }
            }
            entries.sort_by(|a, b| b.0.total_cmp(&a.0));
            for (_, i, j) in entries {
                if added >= budget {
                    break;
                }
                if self.over_budget(nodes[i]) || self.over_budget(nodes[j]) {
                    continue;
                }
                if self.insert(nodes[i], nodes[j]) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Fills any remaining edge deficit by Chung-Lu sampling over the
    /// per-node *residual* budgets (`budget - degree`), so the final graph
    /// hits the edge target with a degree sequence matching the budgets.
    /// No-op without budgets or when already complete.
    pub fn fill_residual<R: Rng>(&mut self, rng: &mut R) {
        let Some(budgets) = self.budgets.clone() else {
            return;
        };
        let deficit: Vec<f64> = (0..self.n)
            .map(|v| budgets[v].saturating_sub(self.degree[v]) as f64)
            .collect();
        let total: f64 = deficit.iter().sum();
        if total <= 0.0 {
            return;
        }
        let mut prefix = Vec::with_capacity(self.n);
        let mut acc = 0.0;
        for &d in &deficit {
            acc += d;
            prefix.push(acc);
        }
        let mut guard = 0usize;
        let limit = 30 * self.remaining() + 100;
        while !self.is_complete() && guard < limit {
            guard += 1;
            let draw = |rng: &mut R| -> NodeId {
                let x = rng.gen::<f64>() * acc;
                prefix.partition_point(|&p| p <= x).min(self.n - 1) as NodeId
            };
            let (u, v) = (draw(rng), draw(rng));
            if self.over_budget(u) || self.over_budget(v) {
                continue;
            }
            self.insert(u, v);
        }
    }

    /// Finalizes into a [`Graph`].
    pub fn build(self) -> Graph {
        // Sort before pushing: `GraphBuilder::build` canonicalizes edge
        // order anyway, but feeding it in hash order would make the
        // builder's intermediate state process-seeded (DESIGN.md §8).
        let mut edges: Vec<(NodeId, NodeId)> = self.edges.into_iter().collect();
        edges.sort_unstable();
        let mut b = GraphBuilder::with_capacity(self.n, edges.len());
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build()
    }
}

/// The naive strategies §III-G argues against, kept for the ablation bench
/// (DESIGN.md §5): pure Bernoulli sampling (high variance) and pure
/// thresholding (drops low-degree nodes).
pub mod naive {
    use cpgan_graph::{Graph, GraphBuilder, NodeId};
    use cpgan_nn::Matrix;
    use rand::Rng;

    /// Samples every upper-triangle entry independently:
    /// `A_ij ~ Bernoulli(p_ij)`. Edge count is not controlled.
    pub fn bernoulli<R: Rng>(probs: &Matrix, rng: &mut R) -> Graph {
        let n = probs.rows();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f32>() < probs.get(i, j) {
                    b.push_edge(i as NodeId, j as NodeId);
                }
            }
        }
        b.build()
    }

    /// Keeps the `m` largest entries regardless of per-node coverage.
    pub fn threshold_top_m(probs: &Matrix, m: usize) -> Graph {
        let n = probs.rows();
        let mut entries: Vec<(f32, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                entries.push((probs.get(i, j), i, j));
            }
        }
        entries.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut b = GraphBuilder::with_capacity(n, m);
        for (_, i, j) in entries.into_iter().take(m) {
            b.push_edge(i as NodeId, j as NodeId);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_probs(ns: usize) -> Matrix {
        Matrix::from_fn(ns, ns, |i, j| if i == j { 0.0 } else { 0.5 })
    }

    #[test]
    fn respects_budget_and_target() {
        let mut asm = GraphAssembler::new(20, 15);
        let mut rng = StdRng::seed_from_u64(0);
        let nodes: Vec<u32> = (0..10).collect();
        let added = asm.add_subgraph(&nodes, &uniform_probs(10), 8, &mut rng);
        assert!(added <= 8);
        assert_eq!(asm.edge_count(), added);
        // Second subgraph completes the target.
        let nodes2: Vec<u32> = (10..20).collect();
        asm.add_subgraph(&nodes2, &uniform_probs(10), 100, &mut rng);
        assert!(asm.edge_count() <= 15);
        let g = asm.build();
        assert_eq!(g.n(), 20);
    }

    #[test]
    fn build_is_deterministic_and_canonically_ordered() {
        // PR 6: `build()` drains the edge set in sorted order, so the
        // assembled graph is a pure function of the inserted edge *set* —
        // never of the per-process hash seed (DESIGN.md §8).
        let assemble = || {
            let mut asm = GraphAssembler::new(12, 20);
            let mut rng = StdRng::seed_from_u64(3);
            let nodes: Vec<u32> = (0..12).collect();
            asm.add_subgraph(&nodes, &uniform_probs(12), 20, &mut rng);
            asm.build()
        };
        let (a, b) = (assemble(), assemble());
        assert_eq!(a.edges(), b.edges(), "assembly must be bit-stable");
        let mut sorted = a.edges().to_vec();
        sorted.sort_unstable();
        assert_eq!(a.edges(), &sorted[..], "edge list must be canonical");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut asm = GraphAssembler::new(6, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let nodes: Vec<u32> = (0..6).collect();
        for _ in 0..5 {
            asm.add_subgraph(&nodes, &uniform_probs(6), 100, &mut rng);
        }
        let g = asm.build();
        assert!(g.m() <= 15); // C(6,2)
        for &(u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn every_positive_row_gets_an_edge_given_budget() {
        // Step 1 guarantees low-probability nodes still receive edges.
        let ns = 8;
        let mut probs = Matrix::from_fn(ns, ns, |i, j| {
            if i == j {
                0.0
            } else if i < 2 || j < 2 {
                0.9
            } else {
                0.01
            }
        });
        probs.set(7, 6, 0.02);
        probs.set(6, 7, 0.02);
        let mut asm = GraphAssembler::new(8, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let nodes: Vec<u32> = (0..8).collect();
        asm.add_subgraph(&nodes, &probs, ns, &mut rng);
        let g = asm.build();
        // Each of the 8 rows sampled one edge; all nodes touched.
        assert!(g.degrees().iter().filter(|&&d| d > 0).count() >= 6);
    }

    #[test]
    fn top_k_prefers_high_probability() {
        let ns = 6;
        let mut probs = Matrix::zeros(ns, ns);
        // Only edges (0,1) and (2,3) have meaningful probability.
        for &(a, b, p) in &[(0, 1, 0.99f32), (2, 3, 0.98), (4, 5, 0.0001)] {
            probs.set(a, b, p);
            probs.set(b, a, p);
        }
        let mut asm = GraphAssembler::new(6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let nodes: Vec<u32> = (0..6).collect();
        asm.add_subgraph(&nodes, &probs, 2, &mut rng);
        let g = asm.build();
        assert!(g.has_edge(0, 1) || g.has_edge(2, 3));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn target_clamped_to_possible() {
        let asm = GraphAssembler::new(3, 100);
        assert_eq!(asm.remaining(), 3);
    }

    /// A probability matrix with two planted blocks plus one low-degree node
    /// whose best edge is still weak.
    fn blocky_probs(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else if i == n - 1 || j == n - 1 {
                0.05 // the low-degree node
            } else if (i < n / 2) == (j < n / 2) {
                0.6
            } else {
                0.02
            }
        })
    }

    #[test]
    fn paper_strategy_covers_low_degree_nodes_threshold_does_not() {
        // §III-G's motivation: thresholding leaves out low-degree nodes; the
        // categorical step keeps them attached.
        let n = 12;
        let probs = blocky_probs(n);
        let m = 16;
        let thresholded = naive::threshold_top_m(&probs, m);
        assert_eq!(
            thresholded.degree((n - 1) as u32),
            0,
            "threshold should drop the weak node"
        );

        let mut rng = StdRng::seed_from_u64(5);
        let mut asm = GraphAssembler::new(n, m);
        let nodes: Vec<u32> = (0..n as u32).collect();
        asm.add_subgraph(&nodes, &probs, m, &mut rng);
        let ours = asm.build();
        assert!(
            ours.degree((n - 1) as u32) > 0,
            "paper strategy must attach the weak node"
        );
    }

    #[test]
    fn paper_strategy_has_lower_edge_count_variance_than_bernoulli() {
        // §III-G's second motivation: Bernoulli sampling has high-variance
        // output; the budgeted strategy hits the target exactly.
        let n = 16;
        let probs = blocky_probs(n);
        let m = 24;
        let mut rng = StdRng::seed_from_u64(9);
        let mut bernoulli_counts = Vec::new();
        for _ in 0..20 {
            bernoulli_counts.push(naive::bernoulli(&probs, &mut rng).m() as f64);
        }
        let mean: f64 = bernoulli_counts.iter().sum::<f64>() / 20.0;
        let var: f64 = bernoulli_counts
            .iter()
            .map(|c| (c - mean).powi(2))
            .sum::<f64>()
            / 20.0;
        assert!(var > 0.5, "bernoulli variance unexpectedly tiny: {var}");

        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut asm = GraphAssembler::new(n, m);
            let nodes: Vec<u32> = (0..n as u32).collect();
            asm.add_subgraph(&nodes, &probs, m, &mut rng);
            assert_eq!(asm.build().m(), m, "budgeted strategy must be exact");
        }
    }
}
