//! Variational inference module (paper §III-D, Eq. 12).
//!
//! Maps the reconstructed hierarchical features `Z_rec` (levels stacked
//! column-wise, `n x (k*hidden)`) to a shared latent Gaussian
//! `N(mu_bar, diag(sigma_bar^2))` via two MLP heads, then draws per-node
//! samples with the reparameterization trick. Exposes `mu`/`logvar` for the
//! KL prior (Eq. 19).

use crate::config::CpGanConfig;
use crate::error::{model_panic, ModelError};
use cpgan_nn::layers::{Activation, Mlp};
use cpgan_nn::{init, loss, Matrix, ParamStore, Tape, Var};
use rand::Rng;

/// Output of one variational pass.
pub struct ViOutput {
    /// Per-node latent samples `Z_vae` (`n x (k * latent)`).
    pub z: Var,
    /// Per-node posterior means (`n x (k * latent)`).
    ///
    /// Eq. 12's literal `mu_bar = mean_i g_mu(...)_i` would erase all
    /// node-specific community information before decoding, leaving the
    /// decoder nothing but iid noise; we keep the per-node means (the
    /// standard VGAE posterior) and apply Eq. 12's averaging only to the
    /// *variance*, which is what the equation's `1/n^2` scaling actually
    /// constrains. See DESIGN.md "substitutions".
    pub mu: Var,
    /// Shared `sigma_bar^2` (`1 x (k * latent)`), per Eq. 12.
    pub var: Var,
    /// KL divergence to the standard normal prior (scalar).
    pub kl: Var,
}

/// The inference network: `g(Z_rec, phi) = sigma(Z_rec phi_0) phi_1` heads
/// for mean and variance.
#[derive(Debug, Clone)]
pub struct VariationalInference {
    g_mu: Mlp,
    g_sigma: Mlp,
    out_dim: usize,
}

impl VariationalInference {
    /// Builds the module; input width is `levels * hidden`, output width is
    /// `levels * latent` (one latent block per hierarchy level for the GRU
    /// decoder to consume).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: &CpGanConfig) -> Self {
        Self::try_new(store, rng, cfg).unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`VariationalInference::new`]: validates the configuration
    /// first.
    pub fn try_new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: &CpGanConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        let k = cfg.effective_levels();
        let in_dim = k * cfg.hidden_dim;
        let out_dim = k * cfg.latent_dim;
        Ok(VariationalInference {
            g_mu: Mlp::new(
                store,
                rng,
                &[in_dim, cfg.hidden_dim, out_dim],
                Activation::Relu,
            ),
            g_sigma: Mlp::new(
                store,
                rng,
                &[in_dim, cfg.hidden_dim, out_dim],
                Activation::Relu,
            ),
            out_dim,
        })
    }

    /// Latent width `k * latent`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Runs inference on `z_rec` (`n x (k*hidden)`) and samples `n` latent
    /// rows with externally drawn standard-normal noise.
    pub fn forward<R: Rng>(&self, tape: &Tape, z_rec: &Var, rng: &mut R) -> ViOutput {
        let n = z_rec.shape().0;
        // Per-node posterior means mu_i = g_mu(Z_rec)_i.
        let mu = self.g_mu.forward(tape, z_rec);
        // Shared variance, Eq. 12: sigma_bar^2 = 1/n^2 * sum_i g_sigma(...)_i^2
        //                                      = 1/n * mean_i g_sigma(...)_i^2.
        let var = self
            .g_sigma
            .forward(tape, z_rec)
            .square()
            .mean_rows()
            .scale(1.0 / n as f32);
        let sigma = var.sqrt();

        // Reparameterization: z_i = mu_i + sigma_bar * eps_i.
        let eps = tape.constant(init::standard_normal(rng, n, self.out_dim));
        let z = mu.add(&sigma.broadcast_row(n).mul(&eps));

        // KL(N(mu_i, sigma^2) || N(0, I)) averaged over nodes, with
        // logvar = ln sigma^2 broadcast across rows.
        let kl = loss::gaussian_kl(&mu, &var.ln().broadcast_row(n));

        ViOutput { z, mu, var, kl }
    }

    /// Draws `n` rows straight from the standard-normal prior (generation
    /// path, Eq. 16's `Z_s`).
    pub fn sample_prior<R: Rng>(&self, tape: &Tape, n: usize, rng: &mut R) -> Var {
        tape.constant(init::standard_normal(rng, n, self.out_dim))
    }

    /// Splits a latent matrix (`n x (k*latent)`) into per-level blocks for
    /// the hierarchical decoder.
    pub fn split_levels(&self, tape: &Tape, z: &Var, levels: usize) -> Vec<Var> {
        let (n, total) = z.shape();
        assert_eq!(total, self.out_dim);
        let per = total / levels;
        // Column slicing via constant selection matrices keeps the op set
        // small: block l = z * E_l with E_l a (total x per) 0/1 matrix.
        (0..levels)
            .map(|l| {
                let mut sel = Matrix::zeros(total, per);
                for c in 0..per {
                    sel.set(l * per + c, c, 1.0);
                }
                let e = tape.constant(sel);
                let block = z.matmul(&e);
                debug_assert_eq!(block.shape(), (n, per));
                block
            })
            .collect()
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> CpGanConfig {
        CpGanConfig {
            hidden_dim: 8,
            latent_dim: 4,
            levels: 2,
            sample_size: 12,
            ..CpGanConfig::tiny()
        }
    }

    #[test]
    fn shapes() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let vi = VariationalInference::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let z_rec = tape.constant(Matrix::from_fn(12, 16, |r, c| ((r + c) as f32 * 0.1).sin()));
        let out = vi.forward(&tape, &z_rec, &mut rng);
        assert_eq!(out.z.shape(), (12, 8));
        assert_eq!(out.mu.shape(), (12, 8));
        assert_eq!(out.var.shape(), (1, 8));
        assert_eq!(out.kl.shape(), (1, 1));
        assert!(out.var.value().as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn kl_nonnegative_and_differentiable() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let vi = VariationalInference::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let z_rec = tape.constant(Matrix::from_fn(10, 16, |r, c| {
            ((r * c) as f32 * 0.07).cos()
        }));
        let out = vi.forward(&tape, &z_rec, &mut rng);
        assert!(out.kl.item() > -1e-4, "kl {}", out.kl.item());
        out.kl.backward();
        let touched = store
            .params()
            .iter()
            .filter(|p| p.lock().grad.frobenius_norm() > 0.0)
            .count();
        assert!(touched > 0, "KL gradient reached no parameters");
    }

    #[test]
    fn split_levels_partitions_columns() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let vi = VariationalInference::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let z = tape.constant(Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32));
        let blocks = vi.split_levels(&tape, &z, 2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].shape(), (3, 4));
        assert_eq!(blocks[0].value().get(0, 0), 0.0);
        assert_eq!(blocks[1].value().get(0, 0), 4.0);
    }

    #[test]
    fn prior_samples_standard_normal() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let vi = VariationalInference::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let z = vi.sample_prior(&tape, 500, &mut rng).value();
        let mean: f32 = z.as_slice().iter().sum::<f32>() / z.len() as f32;
        assert!(mean.abs() < 0.1, "prior mean {mean}");
    }
}
