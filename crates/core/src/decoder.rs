//! Graph decoder (paper §III-E, Eq. 13–14).
//!
//! First decodes the hierarchical latent sequence with a GRU (one step per
//! hierarchy level), then predicts links with a two-layer MLP followed by a
//! scaled dot product. The `CPGAN-C` ablation replaces the GRU with a plain
//! concatenation + MLP.

use crate::config::{CpGanConfig, Variant};
use crate::error::{model_panic, ModelError};
use cpgan_nn::layers::{Activation, GruCell, Mlp};
use cpgan_nn::{Matrix, NnError, ParamStore, ShapeError, Tape, Var};
use rand::Rng;

/// The hierarchical decoder.
#[derive(Debug, Clone)]
pub struct GraphDecoder {
    gru: Option<GruCell>,
    /// Used instead of the GRU by `CPGAN-C`.
    concat_proj: Option<Mlp>,
    /// `g_theta`: the two-layer link-prediction head (Eq. 14).
    link_head: Mlp,
    hidden: usize,
    levels: usize,
    latent: usize,
}

impl GraphDecoder {
    /// Builds the decoder for the given config.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: &CpGanConfig) -> Self {
        Self::try_new(store, rng, cfg).unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`GraphDecoder::new`]: validates the configuration first.
    pub fn try_new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: &CpGanConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        let levels = cfg.effective_levels();
        let hidden = cfg.hidden_dim;
        let (gru, concat_proj) = match cfg.variant {
            Variant::ConcatDecoder => (
                None,
                Some(Mlp::new(
                    store,
                    rng,
                    &[levels * cfg.latent_dim, hidden, hidden],
                    Activation::Relu,
                )),
            ),
            _ => (Some(GruCell::new(store, rng, cfg.latent_dim, hidden)), None),
        };
        let link_head = Mlp::new(store, rng, &[hidden, hidden, hidden], Activation::Relu);
        Ok(GraphDecoder {
            gru,
            concat_proj,
            link_head,
            hidden,
            levels,
            latent: cfg.latent_dim,
        })
    }

    /// Decodes per-level latent blocks into node features `h_k`
    /// (`n x hidden`), Eq. 13.
    pub fn decode_nodes(&self, tape: &Tape, z_levels: &[Var]) -> Var {
        self.try_decode_nodes(tape, z_levels)
            .unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`GraphDecoder::decode_nodes`]: rejects a latent stack whose
    /// level count differs from the decoder's.
    pub fn try_decode_nodes(&self, tape: &Tape, z_levels: &[Var]) -> Result<Var, ModelError> {
        if z_levels.len() != self.levels {
            return Err(ModelError::Nn(NnError::Shape(ShapeError::new(
                "decode_nodes levels",
                format!("{} latent blocks", self.levels),
                format!("{}", z_levels.len()),
            ))));
        }
        if let Some(proj) = &self.concat_proj {
            // CPGAN-C: concatenate all levels and project.
            let cat = Var::try_concat_cols(z_levels)?;
            return Ok(proj.forward(tape, &cat).relu());
        }
        // By construction exactly one of `gru` / `concat_proj` is set, and
        // `levels >= 1` guarantees `z_levels` is non-empty here.
        let Some(gru) = self.gru.as_ref() else {
            return Err(ModelError::Nn(NnError::Shape(ShapeError::new(
                "decode_nodes",
                "a GRU or concat decoding head",
                "neither".to_string(),
            ))));
        };
        let n = z_levels[0].shape().0;
        let mut h = tape.constant(Matrix::zeros(n, self.hidden));
        for z in z_levels {
            h = gru.forward(tape, z, &h);
        }
        Ok(h)
    }

    /// Link-prediction logits `g(h) g(h)^T` (`n x n`), Eq. 14 before the
    /// sigmoid. Training losses consume logits (stable BCE); apply
    /// `sigmoid` for probabilities.
    pub fn link_logits(&self, tape: &Tape, h: &Var) -> Var {
        let e = self.link_head.forward(tape, h);
        // Scale by 1/sqrt(d) to keep logits in a trainable range.
        let scale = 1.0 / (self.hidden as f32).sqrt();
        e.matmul(&e.transpose()).scale(scale)
    }

    /// Convenience: probabilities `sigma(logits)`.
    pub fn link_probabilities(&self, tape: &Tape, h: &Var) -> Var {
        self.link_logits(tape, h).sigmoid()
    }

    /// Latent width expected per level.
    pub fn latent_dim(&self) -> usize {
        self.latent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> CpGanConfig {
        CpGanConfig {
            hidden_dim: 8,
            latent_dim: 4,
            levels: 2,
            sample_size: 10,
            ..CpGanConfig::tiny()
        }
    }

    fn blocks(tape: &Tape, n: usize, d: usize, k: usize) -> Vec<Var> {
        (0..k)
            .map(|l| {
                tape.constant(Matrix::from_fn(n, d, |r, c| {
                    ((r * d + c + l * 31) as f32 * 0.13).sin()
                }))
            })
            .collect()
    }

    #[test]
    fn gru_decoder_shapes() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let dec = GraphDecoder::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let h = dec.decode_nodes(&tape, &blocks(&tape, 6, 4, 2));
        assert_eq!(h.shape(), (6, 8));
        let logits = dec.link_logits(&tape, &h);
        assert_eq!(logits.shape(), (6, 6));
    }

    #[test]
    fn logits_symmetric() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let dec = GraphDecoder::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let h = dec.decode_nodes(&tape, &blocks(&tape, 5, 4, 2));
        let logits = dec.link_logits(&tape, &h).value();
        for i in 0..5 {
            for j in 0..5 {
                assert!((logits.get(i, j) - logits.get(j, i)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn concat_variant_has_no_gru() {
        let cfg = CpGanConfig {
            variant: Variant::ConcatDecoder,
            ..cfg()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let dec = GraphDecoder::new(&mut store, &mut rng, &cfg);
        assert!(dec.gru.is_none());
        let tape = Tape::new();
        let h = dec.decode_nodes(&tape, &blocks(&tape, 4, 4, 2));
        assert_eq!(h.shape(), (4, 8));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let dec = GraphDecoder::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let h = dec.decode_nodes(&tape, &blocks(&tape, 7, 4, 2));
        let p = dec.link_probabilities(&tape, &h).value();
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradients_flow_to_decoder_params() {
        let cfg = cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let dec = GraphDecoder::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let h = dec.decode_nodes(&tape, &blocks(&tape, 6, 4, 2));
        dec.link_logits(&tape, &h).square().sum_all().backward();
        let live = store
            .params()
            .iter()
            .filter(|p| p.lock().grad.frobenius_norm() > 0.0)
            .count();
        assert!(live > store.params().len() / 2, "{live} params with grad");
    }
}
