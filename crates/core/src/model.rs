//! The CPGAN model: construction, training, generation, reconstruction.

use crate::assembly::GraphAssembler;
use crate::config::{CpGanConfig, Variant};
use crate::decoder::GraphDecoder;
use crate::discriminator::Discriminator;
use crate::encoder::{AdjInput, EncoderOutput, LadderEncoder};
use crate::error::{model_panic, ModelError};
use crate::sampling;
use crate::vi::VariationalInference;
use cpgan_community::louvain;
use cpgan_graph::{spectral, Graph, NodeId};
use cpgan_nn::optim::{Adam, Optimizer, StepDecay};
use cpgan_nn::{Csr, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Discriminator loss (Eq. 17 objective value).
    pub d_loss: f32,
    /// Generator loss (Eq. 18 objective value).
    pub g_loss: f32,
    /// Clustering-consistency loss `L_clus`.
    pub clus_loss: f32,
    /// KL prior loss.
    pub kl_loss: f32,
    /// Adjacency reconstruction loss (the hierarchical VAE's likelihood
    /// term, Eq. 14).
    pub recon_loss: f32,
}

/// Full training history.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    /// The final epoch's stats, if training ran.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }
}

/// The Community-Preserving GAN (paper §III).
pub struct CpGan {
    cfg: CpGanConfig,
    encoder: LadderEncoder,
    vi: VariationalInference,
    decoder: GraphDecoder,
    discriminator: Discriminator,
    enc_params: ParamStore,
    gen_params: ParamStore,
    disc_params: ParamStore,
    all_params: ParamStore,
    rng: StdRng,
    sim_state: Option<SimState>,
}

/// Whole-graph posterior statistics cached after training for the
/// simulation procedure (paper §III-H: "CPGAN assumes the whole graph can
/// be accommodated in the GPU memory in the graph simulation procedure").
struct SimState {
    /// Per-node posterior means (`n x (k * latent)`).
    mu: Matrix,
    /// Shared posterior standard deviation (`1 x (k * latent)`).
    sigma: Matrix,
    /// Observed degrees, for the degree-proportional node sampling of
    /// §III-E/G during assembly.
    degrees: Vec<f64>,
}

impl CpGan {
    /// Builds an untrained model.
    pub fn new(cfg: CpGanConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| model_panic(e))
    }

    /// Fallible [`CpGan::new`]: validates the configuration before any
    /// parameter allocation, so deserialized configs fail with a typed
    /// [`ModelError`] instead of a panic inside layer construction.
    pub fn try_new(cfg: CpGanConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut enc_params = ParamStore::new();
        let encoder = LadderEncoder::try_new(&mut enc_params, &mut rng, &cfg)?;
        let mut gen_params = ParamStore::new();
        let vi = VariationalInference::try_new(&mut gen_params, &mut rng, &cfg)?;
        let decoder = GraphDecoder::try_new(&mut gen_params, &mut rng, &cfg)?;
        let mut disc_params = ParamStore::new();
        let discriminator = Discriminator::try_new(&mut disc_params, &mut rng, &cfg)?;
        let mut all_params = ParamStore::new();
        all_params.extend(&enc_params);
        all_params.extend(&gen_params);
        all_params.extend(&disc_params);
        Ok(CpGan {
            cfg,
            encoder,
            vi,
            decoder,
            discriminator,
            enc_params,
            gen_params,
            disc_params,
            all_params,
            rng,
            sim_state: None,
        })
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &CpGanConfig {
        &self.cfg
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.all_params.param_count()
    }

    /// The full parameter registry (persistence and optimizer plumbing).
    pub fn params(&self) -> &ParamStore {
        &self.all_params
    }

    /// `(n, m)` of the graph this model was trained on, if trained.
    pub fn trained_shape(&self) -> Option<(usize, usize)> {
        self.sim_state.as_ref().map(|s| {
            let m = (s.degrees.iter().sum::<f64>() / 2.0).round() as usize;
            (s.mu.rows(), m)
        })
    }

    /// Raw simulation-state triple `(mu, sigma, degrees)` for persistence.
    pub(crate) fn sim_state_raw(&self) -> Option<(Matrix, Matrix, Vec<f64>)> {
        self.sim_state
            .as_ref()
            .map(|s| (s.mu.clone(), s.sigma.clone(), s.degrees.clone()))
    }

    /// Restores the simulation state from a persistence snapshot.
    pub(crate) fn set_sim_state_raw(&mut self, raw: Option<(Matrix, Matrix, Vec<f64>)>) {
        self.sim_state = raw.map(|(mu, sigma, degrees)| SimState { mu, sigma, degrees });
    }

    /// Node features: spectral embedding plus a normalized log-degree
    /// column, so the decoder can reproduce the degree distribution (the
    /// paper's X = X(A) leaves the feature map unspecified beyond "derived
    /// from the adjacency matrix").
    fn features(&self, g: &Graph, seed: u64) -> Matrix {
        let d = self.cfg.spectral_dim;
        let d_eff = d.min(g.n());
        let spec = spectral::spectral_embedding(g, d_eff, seed);
        let max_deg = (0..g.n()).map(|v| g.degree(v as NodeId)).max().unwrap_or(1);
        let norm = ((max_deg + 1) as f32).ln();
        Matrix::from_fn(g.n(), d + 1, |r, c| {
            if c < d_eff {
                spec[r * d_eff + c]
            } else if c < d {
                // Zero padding when the graph is smaller than the embedding
                // width (layer shapes stay fixed).
                0.0
            } else {
                ((g.degree(r as NodeId) + 1) as f32).ln() / norm
            }
        })
    }

    /// Decodes latent rows into link logits (`n x n`).
    fn decode_logits(&self, tape: &Tape, z: &Var) -> Var {
        let levels = self.encoder.levels();
        let blocks = self.vi.split_levels(tape, z, levels);
        let h = self.decoder.decode_nodes(tape, &blocks);
        self.decoder.link_logits(tape, &h)
    }

    /// Clustering-consistency loss `L_clus` (paper §III-F2): cross-entropy
    /// between composed assignment matrices and Louvain hierarchy labels.
    fn clus_loss(&self, tape: &Tape, enc: &EncoderOutput, truth: &[Vec<usize>]) -> Var {
        if enc.assignments_composed.is_empty() || truth.is_empty() {
            return tape.scalar(0.0);
        }
        let mut total = tape.scalar(0.0);
        for (l, composed) in enc.assignments_composed.iter().enumerate() {
            let labels = &truth[l.min(truth.len() - 1)];
            let (n, c) = composed.shape();
            let mut mask = Matrix::zeros(n, c);
            for (i, &y) in labels.iter().enumerate() {
                mask.set(i, y % c, 1.0);
            }
            let mask = tape.constant(mask);
            let ce = composed.ln().mul(&mask).sum_all().scale(-1.0 / n as f32);
            total = total.add(&ce);
        }
        total
    }

    /// One optimizer pass over a sampled subgraph. Returns epoch stats.
    fn train_step(
        &mut self,
        sub: &Graph,
        feats: Matrix,
        truth: &[Vec<usize>],
        opt_d: &mut Adam,
        opt_g: &mut Adam,
        epoch: usize,
    ) -> EpochStats {
        let ns = sub.n();
        let adj = Arc::new(Csr::normalized_adjacency(sub));
        let a_target = Arc::new(Matrix::from_vec(ns, ns, sub.dense_adjacency()));
        // Class-balance weights for the dense adjacency BCE.
        let m = sub.m() as f32;
        let possible = (ns * ns) as f32;
        let pos_weight = ((possible - 2.0 * m) / (2.0 * m + 1.0)).clamp(1.0, 50.0);
        let bce_weights = Arc::new(a_target.map(|t| if t > 0.5 { pos_weight } else { 1.0 }));

        let scalar_one = |v: &Var| {
            let ones = Arc::new(Matrix::full(1, 1, 1.0));
            v.bce_with_logits_mean(&ones, None)
        };
        let scalar_zero = |v: &Var| {
            let zeros = Arc::new(Matrix::zeros(1, 1));
            v.bce_with_logits_mean(&zeros, None)
        };

        // ---- Discriminator step (Eq. 17) ----
        let (d_loss_v, clus_v) = {
            let _span = cpgan_obs::span("core.d_step");
            let tape = Tape::new();
            let x = tape.constant(feats.clone());
            let enc_real = self
                .encoder
                .encode(&tape, &AdjInput::Sparse(Arc::clone(&adj)), &x);
            let real_logit = self.discriminator.logit(&tape, &enc_real.readout_flat);

            // Reconstruction path.
            let z_rec_cat = Var::concat_cols(&enc_real.z_rec);
            let z_vae = match self.cfg.variant {
                Variant::NoVariational => {
                    // Project hidden -> latent deterministically via the VI
                    // mean head (no sampling, no KL).
                    self.vi.forward(&tape, &z_rec_cat, &mut self.rng).mu
                }
                _ => self.vi.forward(&tape, &z_rec_cat, &mut self.rng).z,
            };
            // Detach the generated probabilities: the discriminator update
            // must not flow back into the generator (Eq. 17 differentiates
            // w.r.t. phi_D only).
            let fake_probs = tape.constant(self.decode_logits(&tape, &z_vae).sigmoid().value());
            let enc_fake = self.encoder.encode(&tape, &AdjInput::Dense(fake_probs), &x);
            let fake_logit = self.discriminator.logit(&tape, &enc_fake.readout_flat);

            // Prior path (also detached).
            let z_prior = self.vi.sample_prior(&tape, ns, &mut self.rng);
            let prior_probs = tape.constant(self.decode_logits(&tape, &z_prior).sigmoid().value());
            let enc_prior = self
                .encoder
                .encode(&tape, &AdjInput::Dense(prior_probs), &x);
            let prior_logit = self.discriminator.logit(&tape, &enc_prior.readout_flat);

            let clus = self.clus_loss(&tape, &enc_real, truth);
            let d_loss = scalar_one(&real_logit)
                .add(&scalar_zero(&fake_logit))
                .add(&scalar_zero(&prior_logit))
                .add(&clus.scale(self.cfg.clus_weight));
            let values = (d_loss.item(), clus.item());
            self.all_params.zero_grad();
            d_loss.backward();
            let mut d_side = ParamStore::new();
            d_side.extend(&self.enc_params);
            d_side.extend(&self.disc_params);
            if cpgan_obs::enabled() {
                cpgan_obs::series_record("train.grad_norm_d", epoch as u64, d_side.grad_norm());
            }
            opt_d.step(&d_side);
            values
        };

        // ---- Generator step (Eq. 18-19) ----
        //
        // Eq. 19 updates the encoder with L_prior + L_rec only — adversarial
        // gradients never reach the encoder/VI on the generator side. We
        // realize that routing by detaching the latent before the
        // adversarial decode, so the minimax term can only move the decoder
        // (Eq. 18), and we apply it intermittently so the (rank-deficient,
        // readout-mean-based) adversarial direction cannot drown the
        // likelihood signal under Adam's per-parameter normalization.
        let adv_this_epoch = self.cfg.adv_weight > 0.0 && epoch.is_multiple_of(5);
        let (g_loss_v, kl_v, recon_v) = {
            let _span = cpgan_obs::span("core.g_step");
            let tape = Tape::new();
            let x = tape.constant(feats);
            let enc_real = self
                .encoder
                .encode(&tape, &AdjInput::Sparse(Arc::clone(&adj)), &x);

            let z_rec_cat = Var::concat_cols(&enc_real.z_rec);
            let vi_out = self.vi.forward(&tape, &z_rec_cat, &mut self.rng);
            let (z_vae, kl) = match self.cfg.variant {
                Variant::NoVariational => (vi_out.mu.clone(), tape.scalar(0.0)),
                _ => (vi_out.z, vi_out.kl),
            };
            // Likelihood path (gradients to encoder + VI + decoder).
            let fake_logits = self.decode_logits(&tape, &z_vae);
            let fake_probs = fake_logits.sigmoid();
            let enc_fake = self
                .encoder
                .encode(&tape, &AdjInput::Dense(fake_probs.clone()), &x);

            // Adversarial path (decoder only): decode from a detached latent.
            let adv = if adv_this_epoch {
                let z_detached = tape.constant(z_vae.value());
                let fake_probs_adv = self.decode_logits(&tape, &z_detached).sigmoid();
                let enc_fake_adv = self
                    .encoder
                    .encode(&tape, &AdjInput::Dense(fake_probs_adv), &x);
                let fake_logit = self.discriminator.logit(&tape, &enc_fake_adv.readout_flat);
                let z_prior = self.vi.sample_prior(&tape, ns, &mut self.rng);
                let prior_probs = self.decode_logits(&tape, &z_prior).sigmoid();
                let enc_prior = self
                    .encoder
                    .encode(&tape, &AdjInput::Dense(prior_probs), &x);
                let prior_logit = self.discriminator.logit(&tape, &enc_prior.readout_flat);
                scalar_one(&fake_logit).add(&scalar_one(&prior_logit))
            } else {
                tape.scalar(0.0)
            };

            // Mapping consistency L_rec = ||E(A) - E(A')||^2 (from CycleGAN,
            // §III-F3) over the readout embeddings (Eq. 19's encoder term).
            let l_rec = enc_real
                .readout_flat
                .sub(&enc_fake.readout_flat)
                .square()
                .mean_all();

            // Hierarchical-VAE likelihood term: reconstruct A_sub (Eq. 14).
            let recon = fake_logits.bce_with_logits_mean(&a_target, Some(&bce_weights));

            let g_loss = adv
                .scale(self.cfg.adv_weight)
                .add(&l_rec.scale(self.cfg.rec_weight))
                .add(&kl.scale(self.cfg.kl_weight))
                .add(&recon.scale(self.cfg.recon_weight));
            let values = (g_loss.item(), kl.item(), recon.item());
            self.all_params.zero_grad();
            g_loss.backward();
            let mut g_side = ParamStore::new();
            g_side.extend(&self.enc_params);
            g_side.extend(&self.gen_params);
            if cpgan_obs::enabled() {
                cpgan_obs::series_record("train.grad_norm_g", epoch as u64, g_side.grad_norm());
            }
            opt_g.step(&g_side);
            values
        };

        EpochStats {
            epoch,
            d_loss: d_loss_v,
            g_loss: g_loss_v,
            clus_loss: clus_v,
            kl_loss: kl_v,
            recon_loss: recon_v,
        }
    }

    /// Trains on one observed graph (paper's single-graph setting) using
    /// degree-proportional subgraph sampling per epoch.
    pub fn fit(&mut self, g: &Graph) -> TrainStats {
        let _span = cpgan_obs::span("core.fit");
        cpgan_obs::gauge_set("core.param_count", self.param_count() as f64);
        let mut stats = TrainStats::default();
        let decay = StepDecay {
            lr0: self.cfg.learning_rate,
            decay: self.cfg.lr_decay,
            every: self.cfg.lr_decay_every,
        };
        let mut opt_d = Adam::with_lr(decay.lr0);
        let mut opt_g = Adam::with_lr(decay.lr0);
        let epochs = self.cfg.epochs;
        // One seeded subgraph stream for the whole run: batch grouping can
        // never change the sampled sequence (DESIGN.md §13).
        let mut sampler = sampling::SubgraphSampler::new(self.cfg.seed.wrapping_add(0x5eed));
        // Spectral features are computed once on the observed graph
        // (X = X(A), §III-C1); sampled subgraphs reuse the corresponding
        // rows, keeping the encoder's input distribution stationary across
        // epochs.
        let full_feats = self.features(g, self.cfg.seed);
        for epoch in 0..epochs {
            let _epoch_span = cpgan_obs::span("core.epoch");
            let lr = decay.at(epoch);
            opt_d.set_learning_rate(lr);
            opt_g.set_learning_rate(lr);
            let (sub, ids) = if g.n() > self.cfg.sample_size {
                match sampler.next_subgraph(g, self.cfg.sample_size) {
                    Ok(draw) => draw,
                    // Unreachable under the guard above (sample_size < n);
                    // train on the whole graph rather than abort mid-fit.
                    Err(_) => (g.clone(), (0..g.n() as NodeId).collect()),
                }
            } else {
                (g.clone(), (0..g.n() as NodeId).collect())
            };
            let d = full_feats.cols();
            let mut sub_feats = Matrix::zeros(sub.n(), d);
            for (r, &v) in ids.iter().enumerate() {
                sub_feats
                    .row_mut(r)
                    .copy_from_slice(full_feats.row(v as usize));
            }
            // Hierarchical Louvain ground truth (paper §III-F2).
            let truth: Vec<Vec<usize>> = louvain::louvain_hierarchy(&sub, self.cfg.seed)
                .into_iter()
                .map(|p| p.labels().to_vec())
                .collect();
            if cpgan_obs::enabled() {
                if let Some(finest) = truth.first() {
                    cpgan_obs::series_record(
                        "train.modularity_q",
                        epoch as u64,
                        cpgan_community::modularity::modularity(&sub, finest),
                    );
                }
            }
            let es = self.train_step(&sub, sub_feats, &truth, &mut opt_d, &mut opt_g, epoch);
            cpgan_obs::series_record("train.d_loss", epoch as u64, f64::from(es.d_loss));
            cpgan_obs::series_record("train.g_loss", epoch as u64, f64::from(es.g_loss));
            cpgan_obs::series_record("train.clus_loss", epoch as u64, f64::from(es.clus_loss));
            cpgan_obs::series_record("train.kl_loss", epoch as u64, f64::from(es.kl_loss));
            cpgan_obs::series_record("train.recon_loss", epoch as u64, f64::from(es.recon_loss));
            stats.epochs.push(es);
        }
        // Simulation state: encode the whole observed graph once (this is
        // the step that requires the full graph in device memory, §III-H).
        let (mu, sigma) = self.encode_latents(g);
        self.sim_state = Some(SimState {
            mu,
            sigma,
            degrees: g.degrees().iter().map(|&d| d as f64).collect(),
        });
        stats
    }

    /// Encodes `g` and returns the per-node posterior means and the shared
    /// posterior standard deviation row.
    fn encode_latents(&mut self, g: &Graph) -> (Matrix, Matrix) {
        let tape = Tape::new();
        let x = tape.constant(self.features(g, self.cfg.seed));
        let adj = Arc::new(Csr::normalized_adjacency(g));
        let enc = self.encoder.encode(&tape, &AdjInput::Sparse(adj), &x);
        let z_rec_cat = Var::concat_cols(&enc.z_rec);
        let out = self.vi.forward(&tape, &z_rec_cat, &mut self.rng);
        (out.mu.value(), out.var.sqrt().value())
    }

    /// Generates a new graph with `n` nodes and (approximately) `m` edges by
    /// decoding latent samples subgraph-by-subgraph and assembling the
    /// output adjacency (paper §III-G).
    ///
    /// When the model has been trained and `n` matches the observed graph,
    /// subgraphs are decoded from the cached per-node posterior (fresh noise
    /// per call), which is what makes the generated graph's community
    /// memberships node-aligned with the observed graph — the property
    /// Table III's NMI/ARI measure. For other sizes, latents come from the
    /// standard-normal prior (Eq. 16's `Z_s` path).
    pub fn generate(&self, n: usize, m: usize, rng: &mut StdRng) -> Graph {
        let _span = cpgan_obs::span("core.generate");
        let ns = self.cfg.sample_size.min(n).max(2);
        let mut asm = GraphAssembler::new(n, m);
        if let Some(state) = self.sim_state.as_ref().filter(|s| s.mu.rows() == n) {
            // Degree budgets equal to the observed degrees: top-k fills the
            // highest-probability pairs under the budgets and the residual
            // Chung-Lu pass tops every node up toward its target degree, so
            // the generated degree sequence tracks the observed one.
            let budgets: Vec<usize> = state.degrees.iter().map(|&d| d as usize).collect();
            asm = asm.with_degree_budgets(budgets);
        }
        // Budget per subgraph: proportional share of the edge target.
        let rounds_estimate = (n as f64 / ns as f64).ceil().max(1.0);
        let per_round = ((m as f64 / rounds_estimate).ceil() as usize).max(1);
        let max_rounds = (rounds_estimate as usize) * 8 + 16;
        let mut round = 0;
        let posterior = self.sim_state.as_ref().filter(|s| s.mu.rows() == n);
        // Degree-proportional node sampling when degrees are known.
        let weights: Vec<f64> = match posterior {
            Some(s) => s.degrees.clone(),
            None => vec![1.0; n],
        };
        let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
        while !asm.is_complete() && round < max_rounds {
            round += 1;
            // Weighted partial shuffle: degree-proportional without
            // replacement for the first `ns` slots.
            let mut total: f64 = ids.iter().map(|&v| weights[v as usize]).sum();
            for i in 0..ns {
                let mut x = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
                let mut pick = i;
                for j in i..n {
                    x -= weights[ids[j] as usize];
                    if x <= 0.0 {
                        pick = j;
                        break;
                    }
                }
                total -= weights[ids[pick] as usize];
                ids.swap(i, pick);
            }
            let nodes: Vec<NodeId> = ids[..ns].to_vec();
            let tape = Tape::new();
            let mut noise_rng = StdRng::seed_from_u64(rng.gen());
            let z = match posterior {
                Some(state) => {
                    // z_i = mu_i + sigma * eps for the sampled nodes.
                    let d = state.mu.cols();
                    let mut z = Matrix::zeros(ns, d);
                    let eps = cpgan_nn::init::standard_normal(&mut noise_rng, ns, d);
                    for (r, &v) in nodes.iter().enumerate() {
                        for c in 0..d {
                            z.set(
                                r,
                                c,
                                state.mu.get(v as usize, c) + state.sigma.get(0, c) * eps.get(r, c),
                            );
                        }
                    }
                    tape.constant(z)
                }
                None => self.vi.sample_prior(&tape, ns, &mut noise_rng),
            };
            let probs = self.decode_logits(&tape, &z).sigmoid().value();
            asm.add_subgraph(&nodes, &probs, per_round, rng);
        }
        // Top up any deficit with residual-degree Chung-Lu edges so the
        // output hits the edge target with the right degree sequence.
        asm.fill_residual(rng);
        asm.build()
    }

    /// Encodes `g` and returns the full link-probability matrix (`n x n`).
    /// Intended for graphs that fit densely in memory (reconstruction
    /// experiments); the budget guard in `cpgan_nn::memory` flags larger
    /// inputs as OOM exactly like the paper's GPU runs.
    pub fn reconstruct_probabilities(&self, g: &Graph) -> Matrix {
        let tape = Tape::new();
        let x = tape.constant(self.features(g, self.cfg.seed));
        let adj = Arc::new(Csr::normalized_adjacency(g));
        let enc = self.encoder.encode(&tape, &AdjInput::Sparse(adj), &x);
        let z_rec_cat = Var::concat_cols(&enc.z_rec);
        // Deterministic reconstruction: use the posterior mean.
        let z = {
            let mut rng = StdRng::seed_from_u64(self.cfg.seed);
            self.vi.forward(&tape, &z_rec_cat, &mut rng).mu
        };
        self.decode_logits(&tape, &z).sigmoid().value()
    }

    /// Reconstructs a graph with the observed edge count from the
    /// probability matrix (top-k + categorical assembly).
    pub fn reconstruct(&self, g: &Graph, rng: &mut StdRng) -> Graph {
        self.reconstruct_with_edge_target(g, g.m(), rng)
    }

    /// Reconstructs with an explicit edge target (Table V reconstructs the
    /// *whole* graph from the 80% training edges). Degree budgets scale the
    /// observed (training) degrees up to the target edge count.
    pub fn reconstruct_with_edge_target(
        &self,
        g: &Graph,
        target_m: usize,
        rng: &mut StdRng,
    ) -> Graph {
        let probs = self.reconstruct_probabilities(g);
        let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let scale = target_m as f64 / g.m().max(1) as f64;
        let budgets: Vec<usize> = g
            .degrees()
            .iter()
            .map(|&d| ((d as f64) * scale).round() as usize)
            .collect();
        let mut asm = GraphAssembler::new(g.n(), target_m).with_degree_budgets(budgets);
        asm.add_subgraph(&nodes, &probs, target_m, rng);
        asm.fill_residual(rng);
        asm.build()
    }

    /// Mean negative log-likelihood of a set of edges under a probability
    /// matrix (Table V's NLL columns).
    pub fn edge_nll(probs: &Matrix, edges: &[(NodeId, NodeId)]) -> f64 {
        if edges.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for &(u, v) in edges {
            let p = probs.get(u as usize, v as usize).clamp(1e-6, 1.0);
            total -= (p as f64).ln();
        }
        total / edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::metrics;

    fn planted_graph(k: usize, size: usize) -> (Graph, Vec<usize>) {
        let n = k * size;
        let mut edges = Vec::new();
        for c in 0..k {
            let base = (c * size) as u32;
            for a in 0..size as u32 {
                for b in (a + 1)..size as u32 {
                    if (a + b) % 2 == 0 || b == a + 1 {
                        edges.push((base + a, base + b));
                    }
                }
            }
            let next = (((c + 1) % k) * size) as u32;
            edges.push((base, next));
        }
        let labels = (0..n).map(|v| v / size).collect();
        (Graph::from_edges(n, edges).unwrap(), labels)
    }

    fn quick_cfg() -> CpGanConfig {
        CpGanConfig {
            hidden_dim: 12,
            latent_dim: 6,
            spectral_dim: 4,
            levels: 2,
            sample_size: 36,
            epochs: 30,
            learning_rate: 3e-3,
            ..CpGanConfig::tiny()
        }
    }

    #[test]
    fn training_runs_and_losses_finite() {
        let (g, _) = planted_graph(3, 12);
        let mut model = CpGan::new(quick_cfg());
        let stats = model.fit(&g);
        assert_eq!(stats.epochs.len(), 30);
        for es in &stats.epochs {
            assert!(es.d_loss.is_finite());
            assert!(es.g_loss.is_finite());
            assert!(es.clus_loss.is_finite());
            assert!(es.kl_loss.is_finite());
        }
    }

    #[test]
    fn reconstruction_loss_decreases() {
        let (g, _) = planted_graph(3, 12);
        let mut model = CpGan::new(CpGanConfig {
            epochs: 60,
            ..quick_cfg()
        });
        let stats = model.fit(&g);
        let first: f32 = stats.epochs[..10].iter().map(|e| e.recon_loss).sum::<f32>() / 10.0;
        let last: f32 = stats.epochs[stats.epochs.len() - 10..]
            .iter()
            .map(|e| e.recon_loss)
            .sum::<f32>()
            / 10.0;
        assert!(last < first, "recon did not improve: {first} -> {last}");
    }

    #[test]
    fn generate_produces_target_size() {
        let (g, _) = planted_graph(3, 12);
        let mut model = CpGan::new(quick_cfg());
        model.fit(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let out = model.generate(g.n(), g.m(), &mut rng);
        assert_eq!(out.n(), g.n());
        let m_ratio = out.m() as f64 / g.m() as f64;
        assert!((0.5..=1.1).contains(&m_ratio), "edge ratio {m_ratio}");
    }

    #[test]
    fn reconstruction_better_than_random_nll() {
        let (g, _) = planted_graph(3, 12);
        let mut model = CpGan::new(CpGanConfig {
            epochs: 80,
            ..quick_cfg()
        });
        model.fit(&g);
        let probs = model.reconstruct_probabilities(&g);
        let nll_edges = CpGan::edge_nll(&probs, g.edges());
        // Non-edges as pseudo "wrong" edges — their probabilities must be
        // lower on average, i.e. higher NLL.
        let mut non_edges = Vec::new();
        'outer: for u in 0..g.n() as u32 {
            for v in (u + 1)..g.n() as u32 {
                if !g.has_edge(u, v) {
                    non_edges.push((u, v));
                    if non_edges.len() >= g.m() {
                        break 'outer;
                    }
                }
            }
        }
        let nll_non = CpGan::edge_nll(&probs, &non_edges);
        assert!(
            nll_edges < nll_non,
            "edges {nll_edges} not more likely than non-edges {nll_non}"
        );
    }

    #[test]
    fn trained_model_preserves_communities_better_than_untrained() {
        let (g, labels) = planted_graph(3, 14);
        let eval = |model: &CpGan| -> f64 {
            let mut rng = StdRng::seed_from_u64(4);
            let out = model.generate(g.n(), g.m(), &mut rng);
            let det = louvain::louvain(&out, 0);
            metrics::nmi(det.labels(), &labels)
        };
        let untrained = CpGan::new(quick_cfg());
        let nmi_untrained = eval(&untrained);
        let mut trained = CpGan::new(CpGanConfig {
            epochs: 100,
            ..quick_cfg()
        });
        trained.fit(&g);
        let nmi_trained = eval(&trained);
        // Trained must be at least as community-preserving; allow slack for
        // the stochastic assembly.
        assert!(
            nmi_trained + 0.05 >= nmi_untrained,
            "training hurt community preservation: {nmi_untrained} -> {nmi_trained}"
        );
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let bad = CpGanConfig {
            latent_dim: 0,
            ..quick_cfg()
        };
        match CpGan::try_new(bad) {
            Err(crate::error::ModelError::Config(e)) => assert_eq!(e.field, "latent_dim"),
            other => panic!("expected config error, got {:?}", other.map(|_| "model")),
        }
    }

    #[test]
    fn param_count_positive_and_variant_dependent() {
        let full = CpGan::new(quick_cfg());
        let noh = CpGan::new(CpGanConfig {
            variant: Variant::NoHierarchy,
            ..quick_cfg()
        });
        assert!(full.param_count() > noh.param_count());
    }
}
