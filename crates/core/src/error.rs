//! Typed errors for CPGAN configuration and model construction.
//!
//! Every fallible constructor in this crate has a `try_*` entry point
//! returning [`ModelError`]; the original panicking constructors are thin
//! wrappers. Configuration problems surface as [`ConfigError`] with the
//! offending field named, so callers driving the model from deserialized
//! configs (CLI flags, JSON sweeps) can report them without a panic.

use cpgan_nn::NnError;
use std::fmt;

/// A rejected configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The `CpGanConfig` field that failed validation.
    pub field: &'static str,
    /// Why it was rejected.
    pub reason: String,
}

impl ConfigError {
    /// Builds a validation error for `field`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Errors raised while building or running a CPGAN model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A tensor operation rejected its operands.
    Nn(NnError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Config(e) => e.fmt(f),
            ModelError::Nn(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Config(e) => Some(e),
            ModelError::Nn(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ModelError {
    fn from(e: ConfigError) -> Self {
        ModelError::Config(e)
    }
}

impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}

/// The one sanctioned panic site for the panicking constructor wrappers.
#[cold]
#[inline(never)]
#[allow(clippy::panic)]
pub(crate) fn model_panic(err: ModelError) -> ! {
    panic!("{err}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_names_field() {
        let e = ConfigError::new("hidden_dim", "must be at least 1");
        let msg = e.to_string();
        assert!(msg.contains("hidden_dim"), "{msg}");
        assert!(msg.contains("at least 1"), "{msg}");
    }

    #[test]
    fn model_error_wraps_sources() {
        use std::error::Error as _;
        let e: ModelError = ConfigError::new("levels", "zero").into();
        assert!(e.source().is_some());
        let e: ModelError = NnError::TapeMismatch { op: "add" }.into();
        assert!(e.to_string().contains("different tapes"));
    }
}
