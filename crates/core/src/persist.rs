//! Model persistence: save a trained CPGAN to disk and reload it.
//!
//! The snapshot stores the configuration, every trainable tensor in
//! registration order, and the cached whole-graph simulation state, so a
//! reloaded model generates identically to the original.

use crate::model::CpGan;
use crate::CpGanConfig;
use cpgan_nn::Matrix;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk snapshot of a (possibly trained) CPGAN.
#[derive(Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// The configuration the model was built with.
    pub config: CpGanConfig,
    /// Every trainable tensor, in `ParamStore` registration order.
    pub parameters: Vec<Matrix>,
    /// Cached simulation state `(mu, sigma, degrees)` if the model was
    /// trained.
    pub sim_state: Option<(Matrix, Matrix, Vec<f64>)>,
}

/// Current snapshot version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors from saving/loading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The snapshot does not fit the model (version or shape mismatch).
    Incompatible(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::Incompatible(m) => write!(f, "incompatible snapshot: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl CpGan {
    /// Serializes the model to a snapshot.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config().clone(),
            parameters: self.params().export_values(),
            sim_state: self.sim_state_raw(),
        }
    }

    /// Rebuilds a model from a snapshot.
    pub fn from_snapshot(snap: ModelSnapshot) -> Result<CpGan, PersistError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(PersistError::Incompatible(format!(
                "snapshot version {} (supported: {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        let mut model = CpGan::new(snap.config);
        model
            .params()
            .import_values(snap.parameters)
            .map_err(PersistError::Incompatible)?;
        model.set_sim_state_raw(snap.sim_state);
        Ok(model)
    }

    /// Saves the model as JSON at `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        serde_json::to_writer(file, &self.snapshot())?;
        Ok(())
    }

    /// Loads a model saved by [`save`](Self::save).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<CpGan, PersistError> {
        let file = std::io::BufReader::new(std::fs::File::open(path)?);
        let snap: ModelSnapshot = serde_json::from_reader(file)?;
        CpGan::from_snapshot(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_graph() -> Graph {
        let mut edges = Vec::new();
        for c in 0..3u32 {
            let base = c * 12;
            for a in 0..12u32 {
                for b in (a + 1)..12 {
                    if (a + b) % 2 == 0 {
                        edges.push((base + a, base + b));
                    }
                }
            }
            edges.push((base, (base + 12) % 36));
        }
        Graph::from_edges(36, edges).unwrap()
    }

    #[test]
    fn save_load_round_trip_generates_identically() {
        let g = small_graph();
        let mut model = CpGan::new(CpGanConfig {
            epochs: 8,
            sample_size: 36,
            ..CpGanConfig::tiny()
        });
        model.fit(&g);
        let dir = std::env::temp_dir().join("cpgan_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let loaded = CpGan::load(&path).unwrap();
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let g1 = model.generate(g.n(), g.m(), &mut r1);
        let g2 = loaded.generate(g.n(), g.m(), &mut r2);
        assert_eq!(g1, g2, "reloaded model must generate identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_save_is_bitwise_stable() {
        let g = small_graph();
        let mut model = CpGan::new(CpGanConfig {
            epochs: 4,
            sample_size: 36,
            ..CpGanConfig::tiny()
        });
        model.fit(&g);
        let dir = std::env::temp_dir().join("cpgan_persist_bitwise_test");
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("first.json");
        let second = dir.join("second.json");
        model.save(&first).unwrap();
        let loaded = CpGan::load(&first).unwrap();
        loaded.save(&second).unwrap();
        let a = std::fs::read(&first).unwrap();
        let b = std::fs::read(&second).unwrap();
        assert_eq!(a, b, "save -> load -> save must be bitwise identical");
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }

    #[test]
    fn truncated_and_corrupt_snapshots_error_readably() {
        let g = small_graph();
        let mut model = CpGan::new(CpGanConfig {
            epochs: 2,
            sample_size: 36,
            ..CpGanConfig::tiny()
        });
        model.fit(&g);
        let dir = std::env::temp_dir().join("cpgan_persist_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncated at half length: must be a Json error, not a panic.
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        let Err(err) = CpGan::load(&truncated) else {
            panic!("truncated snapshot must not load");
        };
        assert!(matches!(err, PersistError::Json(_)), "got {err:?}");
        assert!(
            err.to_string().starts_with("serialization error:"),
            "unreadable message: {err}"
        );

        // Arbitrary garbage bytes: likewise a readable Json error.
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, b"\x00\xffnot json at all{{{").unwrap();
        let Err(err) = CpGan::load(&corrupt) else {
            panic!("corrupt snapshot must not load");
        };
        assert!(matches!(err, PersistError::Json(_)), "got {err:?}");
        assert!(!err.to_string().is_empty());

        // Missing file: a readable Io error.
        let missing = dir.join("does_not_exist.json");
        let Err(err) = CpGan::load(&missing) else {
            panic!("missing file must not load");
        };
        assert!(matches!(err, PersistError::Io(_)), "got {err:?}");
        assert!(err.to_string().starts_with("i/o error:"));

        for p in [path, truncated, corrupt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let model = CpGan::new(CpGanConfig::tiny());
        let mut snap = model.snapshot();
        snap.version = 999;
        assert!(matches!(
            CpGan::from_snapshot(snap),
            Err(PersistError::Incompatible(_))
        ));
    }

    #[test]
    fn wrong_parameter_count_rejected() {
        let model = CpGan::new(CpGanConfig::tiny());
        let mut snap = model.snapshot();
        snap.parameters.pop();
        assert!(matches!(
            CpGan::from_snapshot(snap),
            Err(PersistError::Incompatible(_))
        ));
    }

    #[test]
    fn incompatible_message_names_parameter_index_and_shapes() {
        // A registry operator debugging a bad model file needs to know
        // *which* tensor is off and by how much, not just "mismatch".
        let model = CpGan::new(CpGanConfig::tiny());
        let mut snap = model.snapshot();
        let total = snap.parameters.len();
        assert!(total > 2, "tiny model should register several tensors");
        let victim = 2;
        let (r, c) = snap.parameters[victim].shape();
        snap.parameters[victim] = Matrix::zeros(r + 3, c + 1);
        let Err(err) = CpGan::from_snapshot(snap) else {
            panic!("shape-corrupted snapshot must not load");
        };
        let msg = err.to_string();
        assert!(matches!(err, PersistError::Incompatible(_)), "{msg}");
        assert!(
            msg.contains(&format!("parameter {victim} of {total}")),
            "message must name the offending index: {msg}"
        );
        assert!(
            msg.contains(&format!("expected shape {r}x{c}")),
            "message must show the model's shape: {msg}"
        );
        assert!(
            msg.contains(&format!("snapshot has {}x{}", r + 3, c + 1)),
            "message must show the snapshot's shape: {msg}"
        );

        // Count mismatches likewise state both sides.
        let model = CpGan::new(CpGanConfig::tiny());
        let mut snap = model.snapshot();
        snap.parameters.truncate(1);
        let Err(err) = CpGan::from_snapshot(snap) else {
            panic!("truncated parameter list must not load");
        };
        let msg = err.to_string();
        assert!(msg.contains("snapshot has 1 tensors"), "{msg}");
        assert!(msg.contains(&format!("model expects {total}")), "{msg}");
    }
}
