//! Property-based tests for CPGAN's structural components.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan::assembly::GraphAssembler;
use cpgan::config::{CpGanConfig, Variant};
use cpgan::sampling;
use cpgan_graph::{Graph, NodeId};
use cpgan_nn::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), n..4 * n)
            .prop_map(move |edges| Graph::from_edges(n, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degree_sampling_is_subset_without_replacement(g in arb_graph(), seed in 0u64..500) {
        let k = (g.n() / 2).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = sampling::sample_nodes_by_degree(&g, k, &mut rng);
        prop_assert_eq!(nodes.len(), k);
        let set: std::collections::HashSet<_> = nodes.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(nodes.iter().all(|&v| (v as usize) < g.n()));
        // Sorted output (stable downstream indexing).
        prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn assembler_never_exceeds_target_or_budgets(
        seed in 0u64..500,
        ns in 4usize..16,
        target in 1usize..40,
    ) {
        let n = 2 * ns;
        let probs = Matrix::from_fn(ns, ns, |i, j| if i == j { 0.0 } else { 0.4 });
        let budgets = vec![3usize; n];
        let mut asm = GraphAssembler::new(n, target).with_degree_budgets(budgets.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..ns as NodeId).collect();
        asm.add_subgraph(&nodes, &probs, target, &mut rng);
        asm.fill_residual(&mut rng);
        let g = asm.build();
        prop_assert!(g.m() <= target);
        // Budgets may be exceeded only by the categorical seeding step
        // (one edge per node) and residual fill targets them exactly, so
        // degree stays within budget + 1.
        for (v, &budget) in budgets.iter().enumerate() {
            prop_assert!(
                g.degree(v as NodeId) <= budget + 1,
                "node {v} degree {} budget {}",
                g.degree(v as NodeId),
                budget
            );
        }
    }

    #[test]
    fn pool_sizes_monotone_nonincreasing(n in 8usize..10_000, levels in 1usize..5) {
        let cfg = CpGanConfig {
            levels,
            ..CpGanConfig::default()
        };
        let sizes = cfg.pool_sizes(n);
        prop_assert_eq!(sizes.len(), levels.saturating_sub(1));
        let mut prev = n;
        for &s in &sizes {
            prop_assert!(s <= prev.max(2));
            prop_assert!(s >= 2);
            prev = s;
        }
    }

    #[test]
    fn untrained_model_generates_well_formed_graphs(
        seed in 0u64..100,
        n in 10usize..60,
    ) {
        // Generation must be robust even before fit() (prior path).
        let model = cpgan::CpGan::new(CpGanConfig {
            variant: Variant::Full,
            sample_size: 20,
            ..CpGanConfig::tiny()
        });
        let m = 2 * n;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = model.generate(n, m, &mut rng);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.m() <= m);
        for &(u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!((v as usize) < n);
        }
    }
}
