//! Workspace-dependency hygiene for crate manifests.
//!
//! Every dependency in a `crates/*/Cargo.toml` must be inherited from the
//! root `[workspace.dependencies]` table (`foo.workspace = true` or
//! `foo = { workspace = true, ... }`). Locally pinned versions and ad-hoc
//! `path`/`version` deps drift from the rest of the workspace; the root
//! table is the single source of truth.

use crate::{Rule, Violation};

/// Scans one crate manifest for dependency entries that bypass the
/// workspace table. `file` is the label used in reports.
pub fn scan_manifest(file: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = Section::Other;
    // `[dependencies.foo]`-style tables: remember where the header was and
    // whether a `workspace = true` line showed up before the next header.
    let mut open_table: Option<(usize, String, bool)> = None;

    let flush_table = |table: &mut Option<(usize, String, bool)>, out: &mut Vec<Violation>| {
        if let Some((line, name, ok)) = table.take() {
            if !ok {
                out.push(dep_violation(file, line, &name));
            }
        }
    };

    for (idx, raw) in content.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if line.starts_with('[') {
            flush_table(&mut open_table, &mut out);
            let header = line.trim_matches(|c| c == '[' || c == ']');
            section = Section::of(header);
            if let Section::Deps = section {
                // `[dependencies.foo]` / `[dev-dependencies.foo]` table.
                if let Some((_, name)) = header.split_once('.') {
                    open_table = Some((lineno, name.to_string(), false));
                }
            }
            continue;
        }
        match (&section, &mut open_table) {
            (Section::Deps, Some((_, _, ok)))
                if line.replace(' ', "").starts_with("workspace=true") =>
            {
                *ok = true;
            }
            (Section::Deps, None) => {
                if let Some((key, value)) = line.split_once('=') {
                    let key = key.trim();
                    let value = value.trim();
                    let name = key.split('.').next().unwrap_or(key);
                    let inherited = key.ends_with(".workspace") && value == "true"
                        || value.replace(' ', "").contains("workspace=true");
                    if !inherited {
                        out.push(dep_violation(file, lineno, name));
                    }
                }
            }
            _ => {}
        }
    }
    flush_table(&mut open_table, &mut out);
    out
}

fn dep_violation(file: &str, line: usize, name: &str) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        col: 0,
        rule: Rule::WorkspaceDeps,
        message: format!(
            "dependency `{name}` bypasses the workspace table — use `{name}.workspace = true` \
             and declare it once in the root `[workspace.dependencies]`"
        ),
    }
}

enum Section {
    Deps,
    Other,
}

impl Section {
    fn of(header: &str) -> Section {
        let head = header.split('.').next().unwrap_or(header).trim();
        match head {
            "dependencies" | "dev-dependencies" | "build-dependencies" => Section::Deps,
            _ => Section::Other,
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_deps_pass() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\n\
                    rand.workspace = true\nserde = { workspace = true, features = [\"derive\"] }\n";
        assert!(scan_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn pinned_version_flagged() {
        let toml = "[dependencies]\nrand = \"0.8\"\nfoo = { version = \"1\", path = \"../foo\" }\n";
        let v = scan_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::WorkspaceDeps));
        assert_eq!(v[0].line, 2);
        assert!(v[1].message.contains("`foo`"));
    }

    #[test]
    fn table_style_dependency_checked() {
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        assert_eq!(scan_manifest("Cargo.toml", bad).len(), 1);
        let good = "[dependencies.rand]\nworkspace = true\n";
        assert!(scan_manifest("Cargo.toml", good).is_empty());
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let toml = "[package]\nversion = \"0.1.0\"\n[features]\ndefault = []\n";
        assert!(scan_manifest("Cargo.toml", toml).is_empty());
    }
}
