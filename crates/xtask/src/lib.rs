#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`: a custom static analyzer enforcing the
//! workspace's panic-safety policy (see DESIGN.md, "Error handling & panic
//! policy"). It is intentionally dependency-free — a line/byte-level scanner
//! over comment- and string-masked source, not a full parser — so it builds
//! instantly and runs offline.
//!
//! Pipeline:
//!
//! 1. [`mask`] blanks comments and literals so patterns never fire inside
//!    them, preserving byte offsets and line numbers.
//! 2. [`scan`] finds `#[cfg(test)]`/`#[test]` item spans (exempt) and
//!    applies the source rules everywhere else.
//! 3. [`manifest`] checks crate `Cargo.toml` dependency hygiene.
//! 4. [`baseline`] suppresses pre-existing violations via a checked-in
//!    ratchet file that is only ever allowed to shrink.
//! 5. [`walk`] ties it together over `crates/*/src/**/*.rs` plus each
//!    crate manifest.

pub mod baseline;
pub mod manifest;
pub mod mask;
pub mod scan;
pub mod walk;

use std::fmt;

/// The rules enforced by `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` in library (non-test) code.
    NoUnwrap,
    /// `.expect(..)` in library (non-test) code.
    NoExpect,
    /// `panic!`, `todo!` or `unimplemented!` in library code.
    NoPanic,
    /// `==`/`!=` against a floating-point literal.
    FloatEq,
    /// `partial_cmp(..).expect(..)`-style comparators.
    PartialCmpExpect,
    /// Crate manifests must take dependencies from the workspace table.
    WorkspaceDeps,
    /// Direct `std::thread` spawning outside the `cpgan-parallel` runtime.
    AdHocThreading,
    /// Raw `Instant::now()`/`SystemTime::now()` timing outside `cpgan-obs`
    /// and `cpgan-bench`.
    AdHocTiming,
}

impl Rule {
    /// Stable kebab-case rule name used in output and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::PartialCmpExpect => "partial-cmp-expect",
            Rule::WorkspaceDeps => "workspace-deps",
            Rule::AdHocThreading => "ad-hoc-threading",
            Rule::AdHocTiming => "ad-hoc-timing",
        }
    }

    /// Parses a rule from its [`Rule::name`] form.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "no-expect" => Some(Rule::NoExpect),
            "no-panic" => Some(Rule::NoPanic),
            "float-eq" => Some(Rule::FloatEq),
            "partial-cmp-expect" => Some(Rule::PartialCmpExpect),
            "workspace-deps" => Some(Rule::WorkspaceDeps),
            "ad-hoc-threading" => Some(Rule::AdHocThreading),
            "ad-hoc-timing" => Some(Rule::AdHocTiming),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Violation {
    /// Renders the violation as a JSON object (for `--json` mode).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (the lint emits ASCII paths and messages).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
