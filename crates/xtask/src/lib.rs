#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`: a custom static analyzer enforcing the
//! workspace's panic-safety, determinism, and numeric-safety policies (see
//! DESIGN.md §7, §8 and §12). It is intentionally dependency-free — a
//! hand-rolled lexer plus token-walking rules, not a full parser — so it
//! builds instantly and runs offline.
//!
//! Pipeline:
//!
//! 1. [`lexer`] turns the source into a token stream (strings, chars,
//!    comments, raw strings and lifetimes classified, with line/column
//!    spans) so rules never fire inside literals or comments.
//! 2. [`context`] derives per-file facts: test-gated item spans, a
//!    heuristic binding-type table, and `fn` signature spans.
//! 3. [`rules`] hosts one module per rule family; each walks the code
//!    tokens with lookahead. [`scan`] orchestrates them per file.
//! 4. [`manifest`] checks crate `Cargo.toml` dependency hygiene.
//! 5. [`baseline`] suppresses pre-existing violations via a checked-in
//!    ratchet file that is only ever allowed to shrink.
//! 6. [`walk`] ties it together over `crates/*/src/**/*.rs` plus each
//!    crate manifest.
//!
//! [`mask`] is the PR 1 line-masking scanner kept as the differential-test
//! oracle for the lexer (see `tests/tokenizer_differential.rs`).

pub mod baseline;
pub mod context;
pub mod lexer;
pub mod manifest;
pub mod mask;
pub mod rules;
pub mod scan;
pub mod walk;

use std::fmt;

/// The rules enforced by `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` in library (non-test) code.
    NoUnwrap,
    /// `.expect(..)` in library (non-test) code.
    NoExpect,
    /// `panic!`, `todo!` or `unimplemented!` in library code.
    NoPanic,
    /// `==`/`!=` against a floating-point literal.
    FloatEq,
    /// `partial_cmp(..).expect(..)`-style comparators.
    PartialCmpExpect,
    /// Crate manifests must take dependencies from the workspace table.
    WorkspaceDeps,
    /// Direct `std::thread` spawning outside the `cpgan-parallel` runtime.
    AdHocThreading,
    /// Raw `Instant::now()`/`SystemTime::now()` timing outside `cpgan-obs`
    /// and `cpgan-bench`.
    AdHocTiming,
    /// Iteration over `HashMap`/`HashSet` outside an immediately-sorted
    /// context.
    HashIter,
    /// Unseeded or environment-derived entropy (`thread_rng`, `OsRng`,
    /// `RandomState`, `from_entropy`, `rand::random`).
    UnseededRng,
    /// Float reduction (`.sum()`/`.fold()`) fed by a hash-ordered iterator.
    HashFloatAccum,
    /// Lossy `as` cast (`f64 as f32`, wide-int `as f32`,
    /// widening-then-truncating chains).
    LossyCast,
    /// `Box<dyn Error>` in a `pub fn` signature instead of a typed error.
    BoxedErrorPub,
    /// Collecting a hash-ordered iterator into a `Vec` without sorting it.
    UnboundedCollect,
    /// `thread::sleep` or `set_read_timeout` inside a loop body — a
    /// sleep-poll standing in for a blocking primitive.
    SleepPoll,
    /// `fs::read_dir` results consumed without sorting — directory order
    /// is filesystem-dependent.
    UnsortedDirWalk,
}

/// Severity attached to each rule: `Error` rules protect a hard invariant
/// (determinism, panic-freedom); `Warning` rules flag hygiene debt. Both
/// gate CI identically through the baseline ratchet — severity is report
/// metadata, not an enforcement tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Violates a hard workspace invariant.
    Error,
    /// Hygiene / debt finding.
    Warning,
}

impl Severity {
    /// Stable lowercase name used in `--json` output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl Rule {
    /// Every rule, in registry order (used by `--explain` and the doc-sync
    /// test; keep in step with the `DESIGN.md` §12 catalog).
    pub const ALL: [Rule; 16] = [
        Rule::NoUnwrap,
        Rule::NoExpect,
        Rule::NoPanic,
        Rule::FloatEq,
        Rule::PartialCmpExpect,
        Rule::WorkspaceDeps,
        Rule::AdHocThreading,
        Rule::AdHocTiming,
        Rule::SleepPoll,
        Rule::HashIter,
        Rule::UnseededRng,
        Rule::UnboundedCollect,
        Rule::UnsortedDirWalk,
        Rule::HashFloatAccum,
        Rule::LossyCast,
        Rule::BoxedErrorPub,
    ];

    /// Stable kebab-case rule name used in output and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::PartialCmpExpect => "partial-cmp-expect",
            Rule::WorkspaceDeps => "workspace-deps",
            Rule::AdHocThreading => "ad-hoc-threading",
            Rule::AdHocTiming => "ad-hoc-timing",
            Rule::SleepPoll => "sleep-poll",
            Rule::HashIter => "hash-iter",
            Rule::UnseededRng => "unseeded-rng",
            Rule::HashFloatAccum => "hash-float-accum",
            Rule::LossyCast => "lossy-cast",
            Rule::BoxedErrorPub => "boxed-error-pub",
            Rule::UnboundedCollect => "unbounded-collect",
            Rule::UnsortedDirWalk => "unsorted-dir-walk",
        }
    }

    /// Parses a rule from its [`Rule::name`] form.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The rule family (one module under [`rules`] per family).
    pub fn family(self) -> &'static str {
        match self {
            Rule::NoUnwrap | Rule::NoExpect | Rule::NoPanic | Rule::PartialCmpExpect => {
                "panic-safety"
            }
            Rule::FloatEq | Rule::HashFloatAccum => "float-order",
            Rule::WorkspaceDeps => "manifest",
            Rule::AdHocThreading | Rule::AdHocTiming | Rule::SleepPoll => "runtime-gates",
            Rule::HashIter | Rule::UnseededRng | Rule::UnboundedCollect | Rule::UnsortedDirWalk => {
                "determinism"
            }
            Rule::LossyCast | Rule::BoxedErrorPub => "cast-safety",
        }
    }

    /// Severity of this rule (see [`Severity`]).
    pub fn severity(self) -> Severity {
        match self {
            Rule::LossyCast | Rule::BoxedErrorPub => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte) number; 0 when unknown (manifest rules).
    pub col: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(
                f,
                "{}:{}: {} — {}",
                self.file, self.line, self.rule, self.message
            )
        } else {
            write!(
                f,
                "{}:{}:{}: {} — {}",
                self.file, self.line, self.col, self.rule, self.message
            )
        }
    }
}

impl Violation {
    /// Renders the violation as a JSON object (for `--json` mode).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\
             \"family\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.col,
            self.rule,
            self.rule.family(),
            self.rule.severity().name(),
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (the lint emits ASCII paths and messages).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
