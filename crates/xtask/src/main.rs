#![forbid(unsafe_code)]

//! `cargo xtask` — workspace automation CLI.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask lint` run this binary
//! from anywhere in the workspace.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use xtask::baseline::Baseline;
use xtask::walk::{find_workspace_root, scan_workspace};
use xtask::Rule;

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--json] [--update-baseline]
      Run the workspace lints (panic-safety, determinism, float-order,
      cast-safety, runtime-gates, manifest hygiene) over crates/*/src and
      each crate manifest.

      --json             emit findings as a JSON array instead of text
      --update-baseline  rewrite crates/xtask/lint-baseline.toml from the
                         current findings (ratchet down only: refuses if
                         any entry would grow)

      Exits non-zero on findings above the baseline AND on stale baseline
      entries (suppressions no longer matched by any finding).

  lint --explain <rule>
      Print the documentation for one rule (or for every rule when <rule>
      is `all`): what it flags, the invariant it protects, examples, and
      the baseline suppression policy.
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut flags_iter = flags.iter();
    while let Some(flag) = flags_iter.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--update-baseline" => update = true,
            "--explain" => {
                let Some(name) = flags_iter.next() else {
                    eprintln!("xtask lint: --explain needs a rule name (or `all`)\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                return explain(name);
            }
            other => {
                eprintln!("xtask lint: unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match run_lint(json, update) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn explain(name: &str) -> ExitCode {
    if name == "all" {
        let docs: Vec<String> = Rule::ALL.into_iter().map(xtask::rules::explain).collect();
        print!("{}", docs.join("\n"));
        return ExitCode::SUCCESS;
    }
    match Rule::from_name(name) {
        Some(rule) => {
            print!("{}", xtask::rules::explain(rule));
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
            eprintln!(
                "xtask lint: unknown rule `{name}` — known rules: {}",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(json: bool, update: bool) -> Result<ExitCode, String> {
    let start = match env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => env::current_dir().map_err(|e| e.to_string())?,
    };
    let root = find_workspace_root(&start)?;
    let baseline_path = root.join("crates/xtask/lint-baseline.toml");

    let violations = scan_workspace(&root)?;
    let have_baseline = baseline_path.is_file();
    let baseline = if have_baseline {
        let content = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        Baseline::parse(&content)?
    } else {
        Baseline::default()
    };

    if update {
        // Seeding a missing baseline is unrestricted; after that the file
        // only ratchets down.
        let next = if have_baseline {
            baseline.ratchet_to(&violations)?
        } else {
            Baseline::from_violations(&violations)
        };
        fs::write(&baseline_path, next.render())
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "xtask lint: baseline updated ({} entries, {} tolerated violations)",
            next.entries.len(),
            next.entries.values().sum::<usize>()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let report = baseline.check(&violations);
    // Stale suppressions are a failure, not a note: a baseline entry that
    // matches nothing hides future regressions at that (file, rule) key.
    let stale_fail = !report.stale.is_empty();

    if json {
        let rows: Vec<String> = report.new_violations.iter().map(|v| v.to_json()).collect();
        println!("[{}]", rows.join(","));
        for (file, rule, allowed, current) in &report.stale {
            eprintln!(
                "error: stale baseline entry: {file}: `{rule}` tolerates {allowed} but \
                 {current} present — run `cargo xtask lint --update-baseline`"
            );
        }
    } else {
        for v in &report.new_violations {
            println!("{v}");
        }
        for (file, rule, allowed, current) in &report.stale {
            eprintln!(
                "error: stale baseline entry: {file}: `{rule}` tolerates {allowed} but \
                 {current} present — run `cargo xtask lint --update-baseline`"
            );
        }
        if report.passed() && !stale_fail {
            eprintln!(
                "xtask lint: clean ({} findings suppressed by baseline)",
                report.suppressed
            );
        } else {
            eprintln!(
                "xtask lint: {} violation(s) above baseline, {} stale baseline entr(y/ies)",
                report.new_violations.len(),
                report.stale.len()
            );
        }
    }

    Ok(if report.passed() && !stale_fail {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
