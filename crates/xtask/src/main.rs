#![forbid(unsafe_code)]

//! `cargo xtask` — workspace automation CLI.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask lint` run this binary
//! from anywhere in the workspace.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use xtask::baseline::Baseline;
use xtask::walk::{find_workspace_root, scan_workspace};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--json] [--update-baseline]
      Run the workspace panic-safety lints over crates/*/src and each
      crate manifest.

      --json             emit findings as a JSON array instead of text
      --update-baseline  rewrite crates/xtask/lint-baseline.toml from the
                         current findings (ratchet down only: refuses if
                         any entry would grow)
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut update = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            "--update-baseline" => update = true,
            other => {
                eprintln!("xtask lint: unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match run_lint(json, update) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(json: bool, update: bool) -> Result<ExitCode, String> {
    let start = match env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => env::current_dir().map_err(|e| e.to_string())?,
    };
    let root = find_workspace_root(&start)?;
    let baseline_path = root.join("crates/xtask/lint-baseline.toml");

    let violations = scan_workspace(&root)?;
    let have_baseline = baseline_path.is_file();
    let baseline = if have_baseline {
        let content = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        Baseline::parse(&content)?
    } else {
        Baseline::default()
    };

    if update {
        // Seeding a missing baseline is unrestricted; after that the file
        // only ratchets down.
        let next = if have_baseline {
            baseline.ratchet_to(&violations)?
        } else {
            Baseline::from_violations(&violations)
        };
        fs::write(&baseline_path, next.render())
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "xtask lint: baseline updated ({} entries, {} tolerated violations)",
            next.entries.len(),
            next.entries.values().sum::<usize>()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let report = baseline.check(&violations);

    if json {
        let rows: Vec<String> = report.new_violations.iter().map(|v| v.to_json()).collect();
        println!("[{}]", rows.join(","));
    } else {
        for v in &report.new_violations {
            println!("{v}");
        }
        for (file, rule, allowed, current) in &report.stale {
            eprintln!(
                "note: {file}: baseline for `{rule}` is stale ({allowed} tolerated, \
                 {current} present) — run `cargo xtask lint --update-baseline`"
            );
        }
        if report.passed() {
            eprintln!(
                "xtask lint: clean ({} findings suppressed by baseline)",
                report.suppressed
            );
        } else {
            eprintln!(
                "xtask lint: {} violation(s) above baseline",
                report.new_violations.len()
            );
        }
    }

    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
