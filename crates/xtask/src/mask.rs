//! Comment- and string-masking preprocessor.
//!
//! Returns a copy of the source where the contents of comments, string
//! literals and char literals are replaced byte-for-byte with spaces.
//! Newlines survive, so byte offsets and line numbers in the masked text
//! line up exactly with the original — downstream rules can report
//! positions without any mapping table.

/// Blanks comments, strings and char literals out of `source`.
pub fn mask_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = mask_raw_string(bytes, &mut out, i);
            }
            b'"' => {
                i = mask_plain_string(bytes, &mut out, i);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') && !prev_is_ident(bytes, i) => {
                out[i] = b' ';
                i = mask_plain_string(bytes, &mut out, i + 1);
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    for cell in out.iter_mut().take(end).skip(i) {
                        if *cell != b'\n' {
                            *cell = b' ';
                        }
                    }
                    i = end;
                } else {
                    // A lifetime: keep the tick, move on.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // The scanner only blanks ASCII bytes in place, so the result is the
    // same valid UTF-8 length; fall back to lossy just in case.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Does a raw string (`r"`, `r#"`, `br#"` ...) start at `i`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if prev_is_ident(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Masks a raw string starting at `i`; returns the index just past it.
fn mask_raw_string(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        out[j] = b' ';
        j += 1;
    }
    out[j] = b' '; // the 'r'
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        out[j] = b' ';
        hashes += 1;
        j += 1;
    }
    out[j] = b' '; // opening quote
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes.len() - (j + 1) >= hashes
            && bytes[j + 1..j + 1 + hashes].iter().all(|&b| b == b'#')
        {
            for cell in out.iter_mut().take(j + 1 + hashes).skip(j) {
                *cell = b' ';
            }
            return j + 1 + hashes;
        }
        if bytes[j] != b'\n' {
            out[j] = b' ';
        }
        j += 1;
    }
    j
}

/// Masks a `"..."` string starting at the quote; returns the index past it.
fn mask_plain_string(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i;
    out[j] = b' ';
    j += 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                out[j] = b' ';
                if j + 1 < bytes.len() && bytes[j + 1] != b'\n' {
                    out[j + 1] = b' ';
                }
                j += 2;
            }
            b'"' => {
                out[j] = b' ';
                return j + 1;
            }
            b'\n' => j += 1,
            _ => {
                out[j] = b' ';
                j += 1;
            }
        }
    }
    j
}

/// If a char literal starts at `i` (which holds `'`), returns the index
/// just past its closing quote; `None` means this tick is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan a bounded window for the closing quote.
        let mut j = i + 2;
        while j < bytes.len() && j < i + 16 && bytes[j] != b'\n' {
            if bytes[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // Unescaped: exactly one UTF-8 char between the quotes.
    let width = match next {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    };
    if bytes.get(i + 1 + width) == Some(&b'\'') {
        Some(i + 2 + width)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask_comments_and_strings("let x = 1; // unwrap()\n/* panic! */ let y = 2;");
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn masks_strings_but_not_code() {
        let m = mask_comments_and_strings(r#"call("don't unwrap()"); other.unwrap();"#);
        assert_eq!(m.matches("unwrap").count(), 1);
        assert!(m.contains("other.unwrap();"));
    }

    #[test]
    fn masks_raw_strings_and_keeps_offsets() {
        let src = "let s = r#\"panic!\"#; x.expect(1);";
        let m = mask_comments_and_strings(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("panic"));
        assert!(m.contains(".expect(1);"));
    }

    #[test]
    fn lifetimes_survive_char_literals_masked() {
        let m = mask_comments_and_strings("fn f<'a>(x: &'a str, c: char) { if c == 'x' {} }");
        assert!(m.contains("<'a>"));
        assert!(!m.contains("'x'"));
    }

    #[test]
    fn newlines_preserved_in_masked_regions() {
        let src = "a\n/* b\nc */\nd";
        let m = mask_comments_and_strings(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }
}
