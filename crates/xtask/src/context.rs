//! Per-file analysis context shared by every rule: the code-token stream
//! (comments filtered out), `#[cfg(test)]`/`#[test]`/`#[bench]` item spans,
//! a heuristic binding-type table, and `fn` signature spans.
//!
//! The binding table is deliberately approximate — it is a lint, not a type
//! checker. Names are collected file-globally from `let` bindings,
//! `name: Type` field/parameter declarations, and `Name::new()`-style
//! initializers, classified by the *outermost* type constructor (so a
//! `Vec<HashMap<..>>` is a `Vec`, not a map). Shadowing keeps the last
//! declaration. False classifications surface as baseline entries and are
//! reviewed there.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// Coarse type classification for tracked bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// `std::collections::HashMap`.
    HashMap,
    /// `std::collections::HashSet`.
    HashSet,
    /// `f64`.
    F64,
    /// `f32`.
    F32,
    /// `usize`.
    Usize,
    /// `u64`.
    U64,
    /// `i64`.
    I64,
}

impl TypeClass {
    /// Is this a hash-ordered collection?
    pub fn is_hash(self) -> bool {
        matches!(self, TypeClass::HashMap | TypeClass::HashSet)
    }

    /// Is this a 64-bit-or-pointer-width integer (lossy into `f32`)?
    pub fn is_wide_int(self) -> bool {
        matches!(self, TypeClass::Usize | TypeClass::U64 | TypeClass::I64)
    }

    fn of(name: &str) -> Option<TypeClass> {
        match name {
            "HashMap" => Some(TypeClass::HashMap),
            "HashSet" => Some(TypeClass::HashSet),
            "f64" => Some(TypeClass::F64),
            "f32" => Some(TypeClass::F32),
            "usize" => Some(TypeClass::Usize),
            "u64" => Some(TypeClass::U64),
            "i64" => Some(TypeClass::I64),
            _ => None,
        }
    }
}

/// A `fn` signature span (from the `fn` keyword to the body brace or `;`).
#[derive(Debug, Clone, Copy)]
pub struct FnSig {
    /// Whether a `pub` modifier precedes the `fn`.
    pub is_pub: bool,
    /// Code-token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Code-token index one past the end of the signature.
    pub sig_end: usize,
}

/// Everything a rule needs to walk one file.
pub struct FileCtx<'a> {
    /// Workspace-relative label of the file.
    pub file: &'a str,
    /// The raw source.
    pub src: &'a str,
    /// The full token stream, comments included (for differential tests).
    pub tokens: Vec<Token>,
    /// Code tokens only (comments filtered out); rules index into this.
    pub code: Vec<Token>,
    /// Byte ranges of test-gated items.
    test_regions: Vec<(usize, usize)>,
    /// Tracked binding declarations by name: `(code-token index, class)`
    /// in file order. `None` records a shadowing rebind to an untracked
    /// type.
    pub bindings: BTreeMap<String, Vec<(usize, Option<TypeClass>)>>,
    /// `fn` signature spans.
    pub fn_sigs: Vec<FnSig>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `src` and builds the full context.
    pub fn new(file: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
        let test_regions = test_regions(&code, src);
        let bindings = collect_bindings(&code, src);
        let fn_sigs = collect_fn_sigs(&code, src);
        FileCtx {
            file,
            src,
            tokens,
            code,
            test_regions,
            bindings,
            fn_sigs,
        }
    }

    /// Text of code token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        self.code[i].text(self.src)
    }

    /// Is code token `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == name)
    }

    /// Is code token `i` a punct with exactly this text?
    pub fn is_punct(&self, i: usize, op: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == op)
    }

    /// Is byte offset `off` inside a test-gated item?
    pub fn in_test(&self, off: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| off >= s && off < e)
    }

    /// Class of the binding `name` as seen from code token `site`: the
    /// last declaration at or before the site (shadowing), falling back to
    /// the first declaration after it (fields and params bind file-wide
    /// even when the item is declared later in the file).
    pub fn binding(&self, name: &str, site: usize) -> Option<TypeClass> {
        let decls = self.bindings.get(name)?;
        let chosen = decls
            .iter()
            .rev()
            .find(|&&(d, _)| d <= site)
            .or_else(|| decls.first());
        chosen.and_then(|&(_, c)| c)
    }

    /// Index of the code token matching the opening bracket at `open`
    /// (which must hold `(`, `[` or `{`). Returns the close index.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for i in open..self.code.len() {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Index of the code token matching the closing bracket at `close`.
    pub fn matching_open(&self, close: usize) -> Option<usize> {
        let mut depth = 0i64;
        for i in (0..=close).rev() {
            match self.text(i) {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Scans forward from code token `i` through the rest of the enclosing
    /// statement plus the next two sibling statements, returning `true` if
    /// a `sort*` call or a `BTreeMap`/`BTreeSet` constructor appears — the
    /// "immediately sorted" exemption for hash-iteration findings.
    pub fn sorted_context(&self, i: usize) -> bool {
        let mut depth = 0i64;
        let mut stmts = 0usize;
        for j in i..self.code.len() {
            let t = self.text(j);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                ";" if depth == 0 => {
                    stmts += 1;
                    if stmts > 2 {
                        return false;
                    }
                }
                _ => {
                    if self.code[j].kind == TokenKind::Ident
                        && (t.starts_with("sort") || t == "BTreeMap" || t == "BTreeSet")
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Bounds `[start, end)` (code-token indices) of the statement
    /// containing code token `i`: delimited by `;`/`{`/`}` at the
    /// statement's own brace depth.
    pub fn statement_span(&self, i: usize) -> (usize, usize) {
        let mut depth = 0i64;
        let mut start = 0usize;
        for j in (0..i).rev() {
            match self.text(j) {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth < 0 {
                        start = j + 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    start = j + 1;
                    break;
                }
                _ => {}
            }
        }
        let mut depth = 0i64;
        let mut end = self.code.len();
        for (off, j) in (i..self.code.len()).enumerate() {
            let _ = off;
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        end = j;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
        }
        (start, end)
    }

    /// Resolves the head identifier of the postfix chain whose `.` sits at
    /// code index `dot` (e.g. the `counts` of `counts.iter()`, or the
    /// `edges` of `self.edges.iter()`). Walks left over `expr.m1().m2()`
    /// chains; returns `None` for anything it cannot follow.
    pub fn chain_head(&self, dot: usize) -> Option<&'a str> {
        let mut j = dot; // index of a `.` in the chain
        loop {
            if j == 0 {
                return None;
            }
            let prev = j - 1;
            match self.text(prev) {
                ")" | "]" => {
                    let open = self.matching_open(prev)?;
                    if open == 0 {
                        return None;
                    }
                    // `foo(..)` / `foo[..]`: step to the ident before.
                    if self.code[open - 1].kind == TokenKind::Ident {
                        j = open - 1;
                        // The ident before the bracket: is it itself part
                        // of a chain (`x.foo(..)`)?
                        if j == 0 {
                            return Some(self.text(j));
                        }
                        if self.is_punct(j - 1, ".") {
                            j -= 1;
                            continue;
                        }
                        return Some(self.text(j));
                    }
                    return None;
                }
                _ if self.code[prev].kind == TokenKind::Ident => {
                    let name = self.text(prev);
                    if prev > 0 && self.is_punct(prev - 1, ".") {
                        // `a.b.` — keep walking unless `a` is `self`, in
                        // which case `b` is the field the caller wants.
                        if prev >= 2 && self.is_ident(prev - 2, "self") {
                            return Some(name);
                        }
                        j = prev - 1;
                        continue;
                    }
                    return Some(name);
                }
                _ => return None,
            }
        }
    }
}

/// Is the attribute starting at code index `hash` (`#`) a test gate?
/// Returns the code index just past the closing `]` when it is.
fn test_attr_end(code: &[Token], src: &str, hash: usize) -> Option<usize> {
    if !matches!(code.get(hash), Some(t) if t.kind == TokenKind::Punct && t.text(src) == "#") {
        return None;
    }
    let open = hash + 1;
    if !matches!(code.get(open), Some(t) if t.text(src) == "[") {
        return None;
    }
    let mut depth = 0i64;
    let mut close = None;
    for (i, t) in code.iter().enumerate().skip(open) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let body = &code[open + 1..close];
    let first = body.first()?.text(src);
    let is_test = match first {
        "test" | "bench" => body.len() == 1,
        "cfg" => body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "test"),
        _ => false,
    };
    is_test.then_some(close + 1)
}

/// Byte ranges of items gated by `#[cfg(test)]` / `#[test]` / `#[bench]`:
/// the attribute through the matching close brace (or trailing `;`).
fn test_regions(code: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let Some(mut j) = test_attr_end(code, src, i) else {
            i += 1;
            continue;
        };
        let region_start = code[i].start;
        // Skip any further attributes between the gate and the item.
        while j < code.len() && code[j].text(src) == "#" {
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < code.len() {
                match code[k].text(src) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        // Find the end of the item: first `;` at depth 0, or the matching
        // brace of its first `{`.
        let mut end = src.len();
        let mut k = j;
        let mut depth = 0i64;
        while k < code.len() {
            match code[k].text(src) {
                ";" if depth == 0 => {
                    end = code[k].end;
                    break;
                }
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = code[k].end;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((region_start, end));
        // Continue after the region.
        while i < code.len() && code[i].start < end {
            i += 1;
        }
    }
    regions
}

/// The outermost type constructor of a type token span: the last path
/// segment before a generic opener, after stripping `&`/`mut`/lifetimes
/// and `dyn`/`impl`.
fn outer_type_class(toks: &[Token], src: &str) -> Option<TypeClass> {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let text = t.text(src);
        match t.kind {
            TokenKind::Punct if text == "&" => i += 1,
            TokenKind::Lifetime => i += 1,
            TokenKind::Ident if matches!(text, "mut" | "dyn" | "impl") => i += 1,
            _ => break,
        }
    }
    // Path: Ident (:: Ident)* — the segment before `<` (or the last one).
    let mut last = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            last = Some(t.text(src));
            i += 1;
            if i < toks.len() && toks[i].text(src) == "::" {
                i += 1;
                continue;
            }
        }
        break;
    }
    last.and_then(TypeClass::of)
}

/// Collects the heuristic binding table (see module docs).
fn collect_bindings(
    code: &[Token],
    src: &str,
) -> BTreeMap<String, Vec<(usize, Option<TypeClass>)>> {
    let mut out: BTreeMap<String, Vec<(usize, Option<TypeClass>)>> = BTreeMap::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        let text = code[i].text(src);
        if text == "let" {
            // `let [mut] name [: TYPE] [= EXPR]`.
            let mut j = i + 1;
            if matches!(code.get(j), Some(t) if t.text(src) == "mut") {
                j += 1;
            }
            let Some(name_tok) = code.get(j) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue; // destructuring pattern — skip
            }
            let name = name_tok.text(src);
            let class = match code.get(j + 1).map(|t| t.text(src)) {
                Some(":") => {
                    let ty_end = span_until(code, src, j + 2, &["=", ";"]);
                    outer_type_class(&code[j + 2..ty_end], src)
                }
                Some("=") => initializer_class(code, src, j + 2),
                _ => None,
            };
            // A `let` always records, even with `None`: rebinding a name
            // to an untracked type shadows the previous classification.
            out.entry(name.to_string()).or_default().push((j, class));
        } else if i + 1 < code.len()
            && code[i + 1].text(src) == ":"
            && (i == 0
                || matches!(
                    code[i - 1].text(src),
                    "{" | "," | "(" | "pub" | "|" | "&" | "mut"
                ))
        {
            // Field / parameter / struct-literal style `name: TYPE`.
            let ty_end = span_until(code, src, i + 2, &[",", ")", "}", ";", "=", "|"]);
            if let Some(c) = outer_type_class(&code[i + 2..ty_end], src)
                .or_else(|| initializer_class(code, src, i + 2))
            {
                out.entry(text.to_string()).or_default().push((i, Some(c)));
            }
        }
    }
    out
}

/// First index at or after `from` holding one of `stops` at bracket depth
/// 0 (generic `<`/`>` are not tracked — the stop set makes that safe).
fn span_until(code: &[Token], src: &str, from: usize, stops: &[&str]) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(from) {
        let text = t.text(src);
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        if depth == 0 && stops.contains(&text) {
            return j;
        }
    }
    code.len()
}

/// Classifies `Path::new(..)`-style initializers starting at `from`.
fn initializer_class(code: &[Token], src: &str, from: usize) -> Option<TypeClass> {
    // Walk the leading path of the expression.
    let mut segments: Vec<&str> = Vec::new();
    let mut j = from;
    while j < code.len() && code[j].kind == TokenKind::Ident {
        segments.push(code[j].text(src));
        if j + 1 < code.len() && code[j + 1].text(src) == "::" {
            j += 2;
        } else {
            break;
        }
    }
    if segments.len() < 2 {
        return None;
    }
    // `..::HashMap::new` / `..::HashSet::with_capacity` etc.
    let ctor = *segments.last()?;
    if !matches!(
        ctor,
        "new" | "with_capacity" | "default" | "from" | "from_iter"
    ) {
        return None;
    }
    TypeClass::of(segments[segments.len() - 2]).filter(|c| c.is_hash())
}

/// Collects `fn` signature spans and their `pub`-ness.
fn collect_fn_sigs(code: &[Token], src: &str) -> Vec<FnSig> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text(src) == "fn") {
            continue;
        }
        // `pub` among the few modifier tokens before the `fn`.
        let mut is_pub = false;
        for k in (i.saturating_sub(6)..i).rev() {
            match code[k].text(src) {
                "pub" => {
                    is_pub = true;
                    break;
                }
                // visibility args / other modifiers
                "(" | ")" | "crate" | "super" | "in" | "const" | "unsafe" | "extern" | "async" => {}
                _ => break,
            }
        }
        // Signature runs to the first `{` or `;` at bracket depth 0.
        let mut depth = 0i64;
        let mut end = code.len();
        for (j, t) in code.iter().enumerate().skip(i) {
            match t.text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        out.push(FnSig {
            is_pub,
            fn_tok: i,
            sig_end: end,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_gated_items() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }\nfn late() {}\n";
        let ctx = FileCtx::new("t.rs", src);
        let m = src.find("mod tests").unwrap();
        let late = src.find("fn late").unwrap();
        assert!(ctx.in_test(m));
        assert!(!ctx.in_test(0));
        assert!(!ctx.in_test(late));
    }

    #[test]
    fn bench_attr_is_test_gated() {
        let src = "#[bench]\nfn b() { x.unwrap(); }\n";
        let ctx = FileCtx::new("t.rs", src);
        assert!(ctx.in_test(src.find("unwrap").unwrap()));
    }

    #[test]
    fn bindings_from_let_annotations_and_ctors() {
        let src = "fn f() {\n\
                   let a: std::collections::HashMap<usize, f64> = Default::default();\n\
                   let mut b = std::collections::HashSet::new();\n\
                   let c: Vec<std::collections::HashMap<u8, u8>> = vec![];\n\
                   let d: f64 = 0.0;\n\
                   let e = 3;\n\
                   }";
        let ctx = FileCtx::new("t.rs", src);
        let end = ctx.code.len();
        assert_eq!(ctx.binding("a", end), Some(TypeClass::HashMap));
        assert_eq!(ctx.binding("b", end), Some(TypeClass::HashSet));
        assert_eq!(ctx.binding("c", end), None, "outer type is Vec");
        assert_eq!(ctx.binding("d", end), Some(TypeClass::F64));
        assert_eq!(ctx.binding("e", end), None);
    }

    #[test]
    fn let_rebinding_shadows_classification() {
        let src = "fn f() {\n\
                   let counts = std::collections::HashMap::new();\n\
                   let x1 = counts.len();\n\
                   let counts: Vec<(usize, usize)> = Vec::new();\n\
                   let x2 = counts.len();\n\
                   }";
        let ctx = FileCtx::new("t.rs", src);
        let x1 = ctx.code.iter().position(|t| t.text(src) == "x1").unwrap();
        let x2 = ctx.code.iter().position(|t| t.text(src) == "x2").unwrap();
        assert_eq!(ctx.binding("counts", x1), Some(TypeClass::HashMap));
        assert_eq!(ctx.binding("counts", x2), None, "rebound to Vec");
    }

    #[test]
    fn bindings_from_fields_and_params() {
        let src = "struct S { edges: std::collections::HashSet<(u32, u32)>, n: usize }\n\
                   fn f(w: &mut std::collections::HashMap<u8, f64>) {}\n";
        let ctx = FileCtx::new("t.rs", src);
        // Fields bind file-wide: a use site before the declaration still
        // resolves (first-declaration fallback).
        assert_eq!(ctx.binding("edges", 0), Some(TypeClass::HashSet));
        assert_eq!(ctx.binding("n", ctx.code.len()), Some(TypeClass::Usize));
        assert_eq!(ctx.binding("w", ctx.code.len()), Some(TypeClass::HashMap));
    }

    #[test]
    fn chain_head_resolution() {
        let src = "fn f() { counts.iter().sum::<f64>(); self.edges.iter(); }";
        let ctx = FileCtx::new("t.rs", src);
        // `.` before `iter` of counts
        let dot = ctx.code.iter().position(|t| t.text(src) == ".").unwrap();
        assert_eq!(ctx.chain_head(dot), Some("counts"));
        // find `.` before the `iter` that follows `edges`
        let edges_pos = ctx
            .code
            .iter()
            .position(|t| t.text(src) == "edges")
            .unwrap();
        assert_eq!(ctx.chain_head(edges_pos + 1), Some("edges"));
    }

    #[test]
    fn sorted_context_sees_following_statements() {
        let src = "fn f() {\n\
                   let mut v: Vec<(u8, f64)> = m.into_iter().collect();\n\
                   v.sort_unstable_by_key(|e| e.0);\n\
                   let s = 1;\n\
                   }";
        let ctx = FileCtx::new("t.rs", src);
        let iter_pos = ctx
            .code
            .iter()
            .position(|t| t.text(src) == "into_iter")
            .unwrap();
        assert!(ctx.sorted_context(iter_pos));
        let s_pos = ctx.code.iter().position(|t| t.text(src) == "s").unwrap();
        assert!(!ctx.sorted_context(s_pos));
    }

    #[test]
    fn fn_sigs_and_pubness() {
        let src = "pub fn a() -> u8 { 0 }\nfn b(x: u8) {}\npub(crate) fn c() {}\n";
        let ctx = FileCtx::new("t.rs", src);
        assert_eq!(ctx.fn_sigs.len(), 3);
        assert!(ctx.fn_sigs[0].is_pub);
        assert!(!ctx.fn_sigs[1].is_pub);
        assert!(ctx.fn_sigs[2].is_pub);
    }
}
