//! Panic-safety family: `no-unwrap`, `no-expect`, `no-panic`,
//! `partial-cmp-expect`.

use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};
use std::collections::BTreeSet;

/// Runs the family over `ctx`. `claimed` holds code-token indices already
/// reported by a more specific rule (this pass adds the `.unwrap()` /
/// `.expect(..)` chained onto a flagged `partial_cmp`).
pub fn check(ctx: &FileCtx, claimed: &mut BTreeSet<usize>, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        match ctx.text(i) {
            "partial_cmp" => {
                if let Some(chained) = comparator_chain(ctx, i) {
                    claimed.insert(chained);
                    out.push(violation(
                        ctx,
                        i,
                        Rule::PartialCmpExpect,
                        "`partial_cmp(..)` comparator unwrapped — use `f64::total_cmp` \
                         (or sort integer keys directly)"
                            .to_string(),
                    ));
                }
            }
            name @ ("unwrap" | "expect") => {
                if claimed.contains(&i) || !is_method_call(ctx, i) {
                    continue;
                }
                let rule = if name == "unwrap" {
                    Rule::NoUnwrap
                } else {
                    Rule::NoExpect
                };
                out.push(violation(
                    ctx,
                    i,
                    rule,
                    format!(
                        "`.{name}({})` in library code — propagate a typed error or use \
                         a `try_*` API",
                        if name == "expect" { ".." } else { "" }
                    ),
                ));
            }
            name @ ("panic" | "todo" | "unimplemented") if ctx.is_punct(i + 1, "!") => {
                out.push(violation(
                    ctx,
                    i,
                    Rule::NoPanic,
                    format!("`{name}!` in library code — return a typed error instead"),
                ));
            }
            _ => {}
        }
    }
}

/// Is the identifier at code index `i` a method call: preceded by `.` and
/// followed by `(`?
fn is_method_call(ctx: &FileCtx, i: usize) -> bool {
    i > 0 && ctx.is_punct(i - 1, ".") && ctx.is_punct(i + 1, "(")
}

/// If `partial_cmp` at code index `i` is immediately chained into
/// `.unwrap()`/`.expect(..)`, returns the code index of the chained method.
fn comparator_chain(ctx: &FileCtx, i: usize) -> Option<usize> {
    if !ctx.is_punct(i + 1, "(") {
        return None;
    }
    let close = ctx.matching_close(i + 1)?;
    if !ctx.is_punct(close + 1, ".") {
        return None;
    }
    let next = close + 2;
    matches!(
        ctx.code.get(next).map(|t| t.text(ctx.src)),
        Some("unwrap" | "expect")
    )
    .then_some(next)
}
