//! Float-ordering family: `float-eq` (exact comparisons) and
//! `hash-float-accum` (reductions whose addition order is hash-seeded).

use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};
use std::collections::BTreeSet;

/// Methods that yield the elements of a collection in its own order.
pub(crate) const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the family over `ctx`. A `hash-float-accum` finding claims the
/// hash-iteration call sites inside its own statement so `hash-iter` does
/// not double-report the same chain.
pub fn check(ctx: &FileCtx, claimed: &mut BTreeSet<usize>, out: &mut Vec<Violation>) {
    float_eq(ctx, out);
    hash_float_accum(ctx, claimed, out);
}

fn float_eq(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Punct || ctx.in_test(tok.start) {
            continue;
        }
        if !matches!(ctx.text(i), "==" | "!=") {
            continue;
        }
        let left = (i > 0 && ctx.code[i - 1].kind == TokenKind::Float).then(|| ctx.text(i - 1));
        let right = match ctx.code.get(i + 1) {
            Some(t) if t.kind == TokenKind::Float => Some(ctx.text(i + 1)),
            Some(t) if t.text(ctx.src) == "-" => ctx
                .code
                .get(i + 2)
                .filter(|t| t.kind == TokenKind::Float)
                .map(|_| ctx.text(i + 2)),
            _ => None,
        };
        if let Some(lit) = left.or(right) {
            out.push(violation(
                ctx,
                i,
                Rule::FloatEq,
                format!(
                    "exact float comparison against `{lit}` — compare with an epsilon \
                     or `total_cmp`"
                ),
            ));
        }
    }
}

fn hash_float_accum(ctx: &FileCtx, claimed: &mut BTreeSet<usize>, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        if !matches!(ctx.text(i), "sum" | "product" | "fold") {
            continue;
        }
        if i == 0 || !ctx.is_punct(i - 1, ".") {
            continue;
        }
        let Some(name) = ctx.chain_head(i - 1) else {
            continue;
        };
        let Some(class) = ctx.binding(name, i) else {
            continue;
        };
        if !class.is_hash() || ctx.sorted_context(i) {
            continue;
        }
        // Only float reductions are order-sensitive: require float evidence
        // (an `f32`/`f64` mention or a float literal) in the statement.
        let (s, e) = ctx.statement_span(i);
        let floaty = (s..e)
            .any(|j| ctx.code[j].kind == TokenKind::Float || matches!(ctx.text(j), "f32" | "f64"));
        if !floaty {
            continue;
        }
        // Claim the iteration calls on the same collection in this
        // statement; this finding subsumes them.
        for j in s..e {
            if ctx.code[j].kind == TokenKind::Ident
                && ITER_METHODS.contains(&ctx.text(j))
                && j > 0
                && ctx.is_punct(j - 1, ".")
                && ctx.chain_head(j - 1) == Some(name)
            {
                claimed.insert(j);
            }
        }
        out.push(violation(
            ctx,
            i,
            Rule::HashFloatAccum,
            format!(
                "float reduction over hash-ordered `{name}` — iterate a BTreeMap \
                 (or collect and sort) so addition order is deterministic"
            ),
        ));
    }
}
