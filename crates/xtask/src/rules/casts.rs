//! Cast-safety family: `lossy-cast` (precision-losing `as` conversions)
//! and `boxed-error-pub` (type-erased errors on public APIs).
//!
//! `lossy-cast` is deliberately scoped to the conversions that have bitten
//! this codebase — `f64 as f32`, 64-bit-or-pointer-width integers `as
//! f32`, and widening-then-truncating chains (`x as u64 as u32`). The
//! ubiquitous, well-understood float→int rounding casts (`v.round() as
//! usize`) are out of scope by design.

use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};

/// 64-bit-or-pointer-width integer type names (lossy into `f32`).
const WIDE_INT: [&str; 6] = ["usize", "u64", "i64", "isize", "u128", "i128"];
/// Integer types narrower than the wide set (a chained cast into these
/// truncates).
const NARROW_INT: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs the family over `ctx`.
pub fn check(ctx: &FileCtx, out: &mut Vec<Violation>) {
    lossy_casts(ctx, out);
    boxed_error_pub(ctx, out);
}

fn lossy_casts(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.text(i) != "as" || ctx.in_test(tok.start) {
            continue;
        }
        let Some(target) = ctx.code.get(i + 1).map(|t| t.text(ctx.src)) else {
            continue;
        };
        if i == 0 {
            continue;
        }
        let src_desc = if target == "f32" {
            wide_source_into_f32(ctx, i - 1)
        } else if NARROW_INT.contains(&target) {
            // Only the chained form (`x as u64 as u32`): a plain
            // `idx as u32` is routine index math.
            let prev = ctx.text(i - 1);
            (ctx.code[i - 1].kind == TokenKind::Ident
                && WIDE_INT.contains(&prev)
                && i >= 2
                && ctx.is_ident(i - 2, "as"))
            .then(|| prev.to_string())
        } else {
            None
        };
        if let Some(src) = src_desc {
            out.push(violation(
                ctx,
                i,
                Rule::LossyCast,
                format!(
                    "lossy `{src} as {target}` cast — keep the wide type end to end, \
                     use `try_from`, or document the precision demotion in the baseline"
                ),
            ));
        }
    }
}

/// Evidence that the expression ending at code index `last` (just before an
/// `as f32`) is 64-bit-wide. Returns a description of the source type.
fn wide_source_into_f32(ctx: &FileCtx, last: usize) -> Option<String> {
    let tok = ctx.code[last];
    let text = ctx.text(last);
    match tok.kind {
        TokenKind::Ident => {
            // `x as f64 as f32` / `x as usize as f32` chains.
            if text == "f64" || WIDE_INT.contains(&text) {
                if last >= 1 && ctx.is_ident(last - 1, "as") {
                    return Some(text.to_string());
                }
                return None;
            }
            // Tracked binding of a wide type.
            let class = ctx.binding(text, last)?;
            if class == crate::context::TypeClass::F64 {
                Some("f64".to_string())
            } else if class.is_wide_int() {
                Some("wide-int".to_string())
            } else {
                None
            }
        }
        // `1.0f64 as f32`.
        TokenKind::Float if text.ends_with("f64") => Some("f64".to_string()),
        // `( .. as f64 .. ) as f32`: look for wide evidence inside.
        TokenKind::Punct if text == ")" => {
            let open = ctx.matching_open(last)?;
            // A call `foo(..) as f32` is out of scope (return type unknown);
            // only a parenthesised expression counts.
            if open > 0 && ctx.code[open - 1].kind == TokenKind::Ident {
                return None;
            }
            let wide_inside = (open + 1..last).any(|j| {
                ctx.code[j].kind == TokenKind::Ident
                    && j > 0
                    && ctx.is_ident(j - 1, "as")
                    && (ctx.text(j) == "f64" || WIDE_INT.contains(&ctx.text(j)))
            });
            wide_inside.then(|| "f64-wide expression".to_string())
        }
        _ => None,
    }
}

fn boxed_error_pub(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for sig in &ctx.fn_sigs {
        if !sig.is_pub || ctx.in_test(ctx.code[sig.fn_tok].start) {
            continue;
        }
        for j in sig.fn_tok..sig.sig_end {
            if !(ctx.code[j].kind == TokenKind::Ident && ctx.text(j) == "Box") {
                continue;
            }
            if !ctx.is_punct(j + 1, "<") {
                continue;
            }
            // Walk the generic argument span, counting angle brackets
            // character-wise so joined `>>` tokens close two levels.
            let mut depth = 0i64;
            let mut end = sig.sig_end;
            'outer: for k in j + 1..sig.sig_end {
                for c in ctx.text(k).chars() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
            let erased = (j + 2..end)
                .any(|k| ctx.code[k].kind == TokenKind::Ident && ctx.text(k).ends_with("Error"));
            if erased {
                out.push(violation(
                    ctx,
                    j,
                    Rule::BoxedErrorPub,
                    "`Box<dyn Error>` in a public signature — return the crate's typed \
                     error (DESIGN.md §7) so callers can match on failure modes"
                        .to_string(),
                ));
            }
        }
    }
}
