//! Runtime-gate family: `ad-hoc-threading`, `ad-hoc-timing` and
//! `sleep-poll`. All three funnel capability use (threads, the wall
//! clock, blocking) through the one mechanism that is allowed to own it.

use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};

/// Runs the family over `ctx`, honouring the per-crate exemptions.
pub fn check(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let threading_exempt = ctx.file.starts_with("crates/parallel/");
    let timing_exempt =
        ctx.file.starts_with("crates/obs/") || ctx.file.starts_with("crates/bench/");
    check_sleep_poll(ctx, out);
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        match ctx.text(i) {
            // All threading goes through the cpgan-parallel runtime so the
            // determinism contract (fixed chunking, ordered combining)
            // holds everywhere. `thread::available_parallelism` etc. are
            // fine anywhere.
            "thread"
                if !threading_exempt
                    && ctx.is_punct(i + 1, "::")
                    && matches!(
                        ctx.code.get(i + 2).map(|t| t.text(ctx.src)),
                        Some("spawn" | "scope" | "Builder")
                    ) =>
            {
                out.push(violation(
                    ctx,
                    i,
                    Rule::AdHocThreading,
                    "ad-hoc `std::thread` use outside `crates/parallel` — route \
                     through the cpgan-parallel primitives so chunking stays \
                     deterministic"
                        .to_string(),
                ));
            }
            // Wall-clock measurement goes through `cpgan_obs` (spans for
            // aggregated timings, `Stopwatch` for values the caller
            // consumes). Only the observability crate and the benchmark
            // harness read the clock directly.
            name @ ("Instant" | "SystemTime")
                if !timing_exempt && ctx.is_punct(i + 1, "::") && ctx.is_ident(i + 2, "now") =>
            {
                out.push(violation(
                    ctx,
                    i,
                    Rule::AdHocTiming,
                    format!(
                        "ad-hoc `{name}::now()` outside cpgan-obs/cpgan-bench — time \
                         through `cpgan_obs::span` or `cpgan_obs::Stopwatch` instead"
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// `sleep-poll`: `thread::sleep(..)` or `.set_read_timeout(..)` inside a
/// loop body. Both turn a blocking handoff into a wake-and-check poll:
/// latency becomes the sleep quantum and idle CPU is burned re-arming.
/// The sanctioned replacements block for real — `Condvar` waits in the
/// queue, the `polling` shim's `wait`/`notify` in the serve event loop.
/// Load generators measure the other side of the socket, so
/// `crates/bench/` is exempt alongside tests.
fn check_sleep_poll(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if ctx.file.starts_with("crates/bench/") {
        return;
    }
    let bodies = loop_bodies(ctx);
    if bodies.is_empty() {
        return;
    }
    let in_loop = |i: usize| bodies.iter().any(|&(open, close)| open < i && i < close);
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) || !in_loop(i) {
            continue;
        }
        match ctx.text(i) {
            "thread" if ctx.is_punct(i + 1, "::") && ctx.is_ident(i + 2, "sleep") => {
                out.push(violation(
                    ctx,
                    i,
                    Rule::SleepPoll,
                    "`thread::sleep` inside a loop is a poll — block on the real \
                     event instead (Condvar wait, `polling::Poller::wait`/`notify`)"
                        .to_string(),
                ));
            }
            "set_read_timeout" if i > 0 && ctx.is_punct(i - 1, ".") => {
                out.push(violation(
                    ctx,
                    i,
                    Rule::SleepPoll,
                    "re-arming `set_read_timeout` inside a loop is a poll — use a \
                     non-blocking socket registered with the `polling` event loop"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Token spans `(open_brace, close_brace)` of every loop body in the file.
fn loop_bodies(ctx: &FileCtx) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    for i in 0..ctx.code.len() {
        if ctx.code[i].kind != TokenKind::Ident {
            continue;
        }
        let is_header = match ctx.text(i) {
            "loop" | "while" => true,
            // `for` heads a loop unless it is a trait impl (`impl T for U`,
            // previous token an identifier or a closing `>`) or an HRTB
            // (`for<'a>`, next token `<`).
            "for" => {
                let prev_ok = match i.checked_sub(1) {
                    Some(p) => ctx.code[p].kind != TokenKind::Ident && !ctx.is_punct(p, ">"),
                    None => true,
                };
                prev_ok && !ctx.is_punct(i + 1, "<")
            }
            _ => false,
        };
        if !is_header {
            continue;
        }
        if let Some(open) = body_open(ctx, i) {
            if let Some(close) = matching_brace(ctx, open) {
                bodies.push((open, close));
            }
        }
    }
    bodies
}

/// Finds the `{` opening the body of the loop headed at token `header`:
/// the first `{` past the header at paren/bracket depth 0 (closure bodies
/// inside a `while` condition sit at depth > 0 and are skipped).
fn body_open(ctx: &FileCtx, header: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in (header + 1)..ctx.code.len() {
        match ctx.code[j].text(ctx.src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// The index of the `}` matching the `{` at `open`.
fn matching_brace(ctx: &FileCtx, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in open..ctx.code.len() {
        match ctx.code[j].text(ctx.src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}
