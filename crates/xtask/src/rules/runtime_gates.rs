//! Runtime-gate family: `ad-hoc-threading` and `ad-hoc-timing`. Both rules
//! funnel capability use (threads, the wall clock) through the one crate
//! that is allowed to own it.

use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};

/// Runs the family over `ctx`, honouring the per-crate exemptions.
pub fn check(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let threading_exempt = ctx.file.starts_with("crates/parallel/");
    let timing_exempt =
        ctx.file.starts_with("crates/obs/") || ctx.file.starts_with("crates/bench/");
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        match ctx.text(i) {
            // All threading goes through the cpgan-parallel runtime so the
            // determinism contract (fixed chunking, ordered combining)
            // holds everywhere. `thread::available_parallelism` etc. are
            // fine anywhere.
            "thread"
                if !threading_exempt
                    && ctx.is_punct(i + 1, "::")
                    && matches!(
                        ctx.code.get(i + 2).map(|t| t.text(ctx.src)),
                        Some("spawn" | "scope" | "Builder")
                    ) =>
            {
                out.push(violation(
                    ctx,
                    i,
                    Rule::AdHocThreading,
                    "ad-hoc `std::thread` use outside `crates/parallel` — route \
                     through the cpgan-parallel primitives so chunking stays \
                     deterministic"
                        .to_string(),
                ));
            }
            // Wall-clock measurement goes through `cpgan_obs` (spans for
            // aggregated timings, `Stopwatch` for values the caller
            // consumes). Only the observability crate and the benchmark
            // harness read the clock directly.
            name @ ("Instant" | "SystemTime")
                if !timing_exempt && ctx.is_punct(i + 1, "::") && ctx.is_ident(i + 2, "now") =>
            {
                out.push(violation(
                    ctx,
                    i,
                    Rule::AdHocTiming,
                    format!(
                        "ad-hoc `{name}::now()` outside cpgan-obs/cpgan-bench — time \
                         through `cpgan_obs::span` or `cpgan_obs::Stopwatch` instead"
                    ),
                ));
            }
            _ => {}
        }
    }
}
