//! Determinism family: `hash-iter` (iteration over hash-seeded
//! collections), `unseeded-rng` (environment-derived entropy),
//! `unbounded-collect` (hash iteration frozen into a `Vec` unsorted) and
//! `unsorted-dir-walk` (`fs::read_dir` consumed without sorting).

use super::float_order::ITER_METHODS;
use super::violation;
use crate::context::FileCtx;
use crate::lexer::TokenKind;
use crate::{Rule, Violation};
use std::collections::BTreeSet;

/// Entropy sources that draw from the environment instead of the run seed.
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "RandomState"];

/// Runs the family over `ctx`. `claimed` holds call sites already reported
/// by `hash-float-accum` (which subsumes the iteration it feeds on);
/// `unbounded-collect` extends it the same way so `hash-iter` never
/// double-reports a chain this family already flagged.
pub fn check(ctx: &FileCtx, claimed: &mut BTreeSet<usize>, out: &mut Vec<Violation>) {
    check_unbounded_collect(ctx, claimed, out);
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        let text = ctx.text(i);
        if ENTROPY_IDENTS.contains(&text) || (text == "random" && is_rand_path(ctx, i)) {
            out.push(violation(
                ctx,
                i,
                Rule::UnseededRng,
                format!(
                    "`{text}` draws entropy from the environment — derive all \
                     randomness from the run seed (DESIGN.md §8)"
                ),
            ));
            continue;
        }
        // Method form: `<hash collection>.iter()/.keys()/...`.
        if ITER_METHODS.contains(&text)
            && i > 0
            && ctx.is_punct(i - 1, ".")
            && ctx.is_punct(i + 1, "(")
            && !claimed.contains(&i)
        {
            if let Some(name) = ctx.chain_head(i - 1) {
                if ctx.binding(name, i).is_some_and(|c| c.is_hash()) && !ctx.sorted_context(i) {
                    out.push(hash_iter(ctx, i, name));
                }
            }
        }
        // For-loop form: `for pat in [&][mut] name {` / `... self.field {`.
        if text == "for" {
            if let Some((site, name)) = for_loop_hash_operand(ctx, i) {
                if !claimed.contains(&site) && !ctx.sorted_context(site) {
                    out.push(hash_iter(ctx, site, name));
                }
            }
        }
        // `fs::read_dir(..)` whose results are consumed without a sort in
        // the sorted-context window. Directory iteration order is
        // filesystem-dependent (DESIGN.md §8): any walk that feeds file
        // contents into deterministic processing must sort the entries.
        if text == "read_dir" && ctx.is_punct(i + 1, "(") && !ctx.sorted_context(i) {
            out.push(violation(
                ctx,
                i,
                Rule::UnsortedDirWalk,
                "`read_dir` order is filesystem-dependent — sort the entries \
                 (or their paths) before consuming them (DESIGN.md §8)"
                    .to_string(),
            ));
        }
    }
}

/// `unbounded-collect`: a hash-ordered iterator chain `.collect()`ed into a
/// `Vec` with no sort in scope. The `Vec` freezes the hash map's arbitrary
/// iteration order into positional data, which then feeds generation —
/// strictly worse than a transient `hash-iter` because the nondeterminism
/// persists past the statement.
///
/// Detection: a `.collect(` / `.collect::<` call whose chain head is a
/// hash-classified binding, where the statement carries `Vec` evidence (a
/// type annotation or turbofish — collects into `BTreeMap`/`BTreeSet`/
/// `HashSet` are the other rules' business) and no sort follows in the
/// sorted-context window. A finding claims the chain's iterator call sites
/// so `hash-iter` does not also fire on the same statement.
fn check_unbounded_collect(ctx: &FileCtx, claimed: &mut BTreeSet<usize>, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        let tok = ctx.code[i];
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        if ctx.text(i) != "collect"
            || i == 0
            || !ctx.is_punct(i - 1, ".")
            || !(ctx.is_punct(i + 1, "(") || ctx.is_punct(i + 1, "::"))
        {
            continue;
        }
        let Some(name) = ctx.chain_head(i - 1) else {
            continue;
        };
        if !ctx.binding(name, i).is_some_and(|c| c.is_hash()) || ctx.sorted_context(i) {
            continue;
        }
        let (s, e) = ctx.statement_span(i);
        // `Vec` evidence anywhere in the statement: `let x: Vec<_> = ...` or
        // `.collect::<Vec<_>>()`. Without it the collect target is unknown
        // (or a self-ordering collection) and `hash-iter` keeps the site.
        if !(s..e).any(|j| ctx.code[j].kind == TokenKind::Ident && ctx.text(j) == "Vec") {
            continue;
        }
        out.push(violation(
            ctx,
            i,
            Rule::UnboundedCollect,
            format!(
                "hash-ordered `{name}` collected into a Vec without sorting — the Vec \
                 freezes the hash iteration order; sort it before use or collect \
                 into a BTree collection (DESIGN.md §8)"
            ),
        ));
        // Subsume the chain's iterator sites (same pattern as
        // `hash-float-accum`).
        claimed.insert(i);
        for j in s..e {
            if ctx.code[j].kind == TokenKind::Ident
                && ITER_METHODS.contains(&ctx.text(j))
                && j > 0
                && ctx.is_punct(j - 1, ".")
                && ctx.chain_head(j - 1) == Some(name)
            {
                claimed.insert(j);
            }
        }
    }
}

fn hash_iter(ctx: &FileCtx, tok: usize, name: &str) -> Violation {
    violation(
        ctx,
        tok,
        Rule::HashIter,
        format!(
            "iteration over hash-ordered `{name}` — use a BTreeMap/BTreeSet or sort \
             the collected entries first (DESIGN.md §8)"
        ),
    )
}

/// Is `random` at code index `i` the tail of a `rand::random` path?
fn is_rand_path(ctx: &FileCtx, i: usize) -> bool {
    i >= 2 && ctx.is_punct(i - 1, "::") && ctx.is_ident(i - 2, "rand")
}

/// For a `for` keyword at code index `i`, returns the token index and name
/// of the iterated collection when the loop operand is exactly a tracked
/// hash-classified path (`name`, `&name`, `&mut name`, `self.field`).
fn for_loop_hash_operand<'a>(ctx: &FileCtx<'a>, i: usize) -> Option<(usize, &'a str)> {
    // `for<'a> Fn(..)` higher-ranked bounds are not loops.
    if ctx.is_punct(i + 1, "<") {
        return None;
    }
    // Find the `in` keyword at bracket depth 0 before the body `{`.
    let mut depth = 0i64;
    let mut k = None;
    for j in i + 1..ctx.code.len() {
        match ctx.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "in" if depth == 0 && ctx.code[j].kind == TokenKind::Ident => {
                k = Some(j);
                break;
            }
            _ => {}
        }
    }
    let mut j = k? + 1;
    while matches!(ctx.code.get(j).map(|t| t.text(ctx.src)), Some("&" | "mut")) {
        j += 1;
    }
    let name_tok = ctx.code.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let (site, name) = if name_tok.text(ctx.src) == "self" && ctx.is_punct(j + 1, ".") {
        (j + 2, ctx.code.get(j + 2)?.text(ctx.src))
    } else {
        (j, name_tok.text(ctx.src))
    };
    // Only a bare path: the next token must open the loop body. Method
    // chains (`map.keys()`) are handled by the method form.
    if !ctx.is_punct(site + 1, "{") {
        return None;
    }
    ctx.binding(name, site)
        .is_some_and(|c| c.is_hash())
        .then_some((site, name))
}
