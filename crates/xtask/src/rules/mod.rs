//! One module per rule family, plus the rule catalog backing `--explain`
//! and the DESIGN.md doc-sync test.
//!
//! Every rule walks the code-token stream of a [`FileCtx`]; rules never see
//! comments or the inside of string/char literals, so masked-in-string
//! cases are structurally impossible rather than special-cased.

pub mod casts;
pub mod determinism;
pub mod float_order;
pub mod panic_safety;
pub mod runtime_gates;

use crate::context::FileCtx;
use crate::{Rule, Violation};

/// Builds a violation anchored at code token `tok` of `ctx`.
pub(crate) fn violation(ctx: &FileCtx, tok: usize, rule: Rule, message: String) -> Violation {
    let t = ctx.code[tok];
    Violation {
        file: ctx.file.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// Documentation for one rule: the source of truth for `--explain` and the
/// DESIGN.md §12 catalog (a doc-sync test keeps them aligned).
pub struct RuleDoc {
    /// The rule documented.
    pub rule: Rule,
    /// One-line summary of what is flagged.
    pub summary: &'static str,
    /// Which workspace invariant the rule protects, and why.
    pub rationale: &'static str,
    /// A minimal flagged example.
    pub example_bad: &'static str,
    /// The sanctioned replacement.
    pub example_good: &'static str,
    /// When a baseline suppression is acceptable.
    pub suppression: &'static str,
}

/// The full rule catalog, in [`Rule::ALL`] order.
pub fn catalog() -> Vec<RuleDoc> {
    Rule::ALL.into_iter().map(doc).collect()
}

/// Documentation for `rule`.
pub fn doc(rule: Rule) -> RuleDoc {
    match rule {
        Rule::NoUnwrap => RuleDoc {
            rule,
            summary: "`.unwrap()` in library (non-test) code",
            rationale: "Panics abort the whole generation pipeline; library code must \
                        propagate the crate's typed errors (DESIGN.md §7).",
            example_bad: "let g = builder.build().unwrap();",
            example_good: "let g = builder.build()?;",
            suppression: "Only for provably-infallible unwraps that cannot be expressed \
                          as `expect` on an invariant; prefer restructuring.",
        },
        Rule::NoExpect => RuleDoc {
            rule,
            summary: "`.expect(..)` in library (non-test) code",
            rationale: "Same contract as no-unwrap: typed errors, not panics, cross API \
                        boundaries (DESIGN.md §7).",
            example_bad: "let f = File::open(p).expect(\"config\");",
            example_good: "let f = File::open(p).map_err(CpganError::io)?;",
            suppression: "Only at binary entry points where the process is the error \
                          boundary, with a message naming the invariant.",
        },
        Rule::NoPanic => RuleDoc {
            rule,
            summary: "`panic!`, `todo!` or `unimplemented!` in library code",
            rationale: "A panic in one shard kills the whole deterministic pipeline; \
                        unreachable states should be typed errors (DESIGN.md §7).",
            example_bad: "panic!(\"bad community id {id}\")",
            example_good: "return Err(CommunityError::UnknownId(id));",
            suppression: "Documented unreachable-by-construction arms only (each \
                          baselined site carries a comment).",
        },
        Rule::FloatEq => RuleDoc {
            rule,
            summary: "`==`/`!=` against a floating-point literal",
            rationale: "Exact float equality is brittle under reassociation and makes \
                        golden tests lie; compare via epsilon or `total_cmp`.",
            example_bad: "if delta_q == 0.0 { .. }",
            example_good: "if delta_q.abs() < EPS { .. }",
            suppression: "Exact sentinel comparisons (e.g. against a value stored \
                          verbatim and never computed) — document the sentinel.",
        },
        Rule::PartialCmpExpect => RuleDoc {
            rule,
            summary: "`partial_cmp(..).unwrap()`-style float comparators",
            rationale: "NaN turns the comparator into a panic site inside `sort_by`; \
                        `f64::total_cmp` is total and deterministic.",
            example_bad: "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            example_good: "v.sort_by(|a, b| a.total_cmp(b));",
            suppression: "None — `total_cmp` is always available.",
        },
        Rule::WorkspaceDeps => RuleDoc {
            rule,
            summary: "crate dependency not inherited from the workspace table",
            rationale: "Locally pinned versions drift; the root \
                        `[workspace.dependencies]` table is the single source of truth.",
            example_bad: "rand = \"0.8\"",
            example_good: "rand.workspace = true",
            suppression: "None — every dependency goes through the root table.",
        },
        Rule::AdHocThreading => RuleDoc {
            rule,
            summary: "direct `std::thread` spawning outside `cpgan-parallel`",
            rationale: "Bit-identical output at any thread count (DESIGN.md §8) relies \
                        on cpgan-parallel's fixed chunking and index-ordered combining; \
                        ad-hoc threads bypass both.",
            example_bad: "std::thread::spawn(move || shard.train());",
            example_good: "cpgan_parallel::map_chunks(&shards, train);",
            suppression: "None — new parallel primitives belong in crates/parallel.",
        },
        Rule::AdHocTiming => RuleDoc {
            rule,
            summary: "raw `Instant::now()`/`SystemTime::now()` outside cpgan-obs/bench",
            rationale: "Timing must stay discoverable and obs-gated (spans, Stopwatch) \
                        so measurement never leaks into library control flow.",
            example_bad: "let t0 = std::time::Instant::now();",
            example_good: "let _span = cpgan_obs::span!(\"train.epoch\");",
            suppression: "None — crates/obs and crates/bench are the only clock readers.",
        },
        Rule::SleepPoll => RuleDoc {
            rule,
            summary: "`thread::sleep` or `set_read_timeout` re-armed inside a loop",
            rationale: "A sleep-poll trades latency for idle burn: reaction time \
                        degrades to the sleep quantum and the CPU wakes just to \
                        re-check. Blocking primitives already exist — Condvar waits \
                        in the queue, the polling shim's wait/notify in the serve \
                        event loop (DESIGN.md §11).",
            example_bad: "loop {\n    stream.set_read_timeout(Some(SHORT))?;\n    ..\n}",
            example_good: "poller.wait(&mut events, timeout)?; // woken by notify()",
            suppression: "Only where no waitable event exists (e.g. watching a \
                          foreign file for change) — document what is being polled.",
        },
        Rule::HashIter => RuleDoc {
            rule,
            summary: "iteration over a `HashMap`/`HashSet` outside a sorted context",
            rationale: "Hash iteration order is seeded per process; anything ordering- \
                        or float-accumulation-sensitive downstream silently breaks the \
                        bit-identical-generation contract (DESIGN.md §8). PR 2 found \
                        exactly this in `louvain::aggregate()` after the fact.",
            example_bad: "for (k, v) in &map { out.push((k, v)); }",
            example_good: "let mut kv: Vec<_> = map.iter().collect();\nkv.sort_unstable();",
            suppression: "Iteration whose consumer is provably order-insensitive \
                          (pure counting/max with total tiebreak) — document why.",
        },
        Rule::UnseededRng => RuleDoc {
            rule,
            summary: "unseeded or environment-derived entropy source",
            rationale: "`thread_rng`/`OsRng`/`RandomState`/`from_entropy` draw from the \
                        environment, so two runs with the same config diverge; all \
                        randomness flows from the run seed (DESIGN.md §8).",
            example_bad: "let mut rng = rand::thread_rng();",
            example_good: "let mut rng = SplitMix64::new(cfg.seed);",
            suppression: "None — even diagnostics should derive from the run seed.",
        },
        Rule::UnboundedCollect => RuleDoc {
            rule,
            summary: "hash-ordered iterator collected into a `Vec` without sorting",
            rationale: "Collecting `HashMap`/`HashSet` iteration into a `Vec` freezes \
                        the per-process hash order into positional data; when that Vec \
                        later feeds generation (edge assembly, node selection), every \
                        run produces a different graph. Worse than a transient \
                        `hash-iter` because the nondeterminism outlives the statement \
                        (DESIGN.md §8).",
            example_bad: "let nodes: Vec<u32> = members.keys().copied().collect();",
            example_good: "let mut nodes: Vec<u32> = members.keys().copied().collect();\n\
                           nodes.sort_unstable();",
            suppression: "A Vec that is provably consumed order-insensitively before \
                          any RNG or output touches it — document why.",
        },
        Rule::UnsortedDirWalk => RuleDoc {
            rule,
            summary: "`fs::read_dir` results consumed without sorting",
            rationale: "Directory iteration order is filesystem-dependent (inode \
                        order on ext4, insertion order on tmpfs, name order on \
                        some network mounts), so any walk feeding file contents \
                        into processing produces machine-dependent results unless \
                        the entries are sorted first (DESIGN.md §8).",
            example_bad: "for entry in fs::read_dir(dir)? { visit(entry?); }",
            example_good: "let mut paths: Vec<_> = fs::read_dir(dir)?\n    \
                           .map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;\n\
                           paths.sort();",
            suppression: "A walk whose consumer is provably order-insensitive \
                          (e.g. counting files, deleting everything) — document why.",
        },
        Rule::HashFloatAccum => RuleDoc {
            rule,
            summary: "float reduction (`sum`/`fold`) fed by a hash-ordered iterator",
            rationale: "Float addition is not associative; reducing in hash order makes \
                        the result depend on the per-process hasher seed, which breaks \
                        golden files and serve-vs-CLI byte equality.",
            example_bad: "map.values().map(|&c| c as f64 / n).sum::<f64>()",
            example_good: "BTreeMap iteration (or collect + sort) before the reduction",
            suppression: "Only when the reduction is exact in f64 (e.g. small-integer \
                          sums) — document the exactness argument.",
        },
        Rule::LossyCast => RuleDoc {
            rule,
            summary: "lossy `as` cast: `f64 as f32`, wide-int `as f32`, or a \
                      widening-then-truncating chain",
            rationale: "Silent precision loss moves error into places the golden tests \
                        cannot localize; conversions that can lose data should be \
                        explicit (`try_from`) or a documented design decision.",
            example_bad: "let w = (count as f64 / total as f64) as f32;",
            example_good: "keep f64 end to end, or baseline the documented demotion",
            suppression: "Deliberate precision demotions at storage boundaries (e.g. \
                          f64 accumulate → f32 store) with a comment at the site.",
        },
        Rule::BoxedErrorPub => RuleDoc {
            rule,
            summary: "`Box<dyn Error>` in a `pub fn` signature",
            rationale: "The PR 1 typed-error taxonomy exists so callers can match on \
                        failure modes; boxed errors erase that at the API boundary.",
            example_bad: "pub fn load(p: &Path) -> Result<Graph, Box<dyn Error>>",
            example_good: "pub fn load(p: &Path) -> Result<Graph, GraphError>",
            suppression: "None in workspace crates; bin-only glue may baseline it.",
        },
    }
}

/// Renders one rule's documentation for `--explain`.
pub fn explain(rule: Rule) -> String {
    let d = doc(rule);
    format!(
        "{name} [{family}/{severity}]\n  {summary}\n\nWhy:\n  {rationale}\n\n\
         Flagged:\n  {bad}\n\nInstead:\n  {good}\n\nBaseline policy:\n  {sup}\n",
        name = rule.name(),
        family = rule.family(),
        severity = rule.severity().name(),
        summary = d.summary,
        rationale = d.rationale,
        bad = d.example_bad,
        good = d.example_good,
        sup = d.suppression,
    )
}
