//! A lightweight Rust lexer: the token stream the lint rules walk.
//!
//! This replaces the regex-over-masked-lines approach of the original
//! engine (`mask.rs`, kept as the reference implementation for the
//! differential test). Tokens carry byte spans plus 1-based line/column,
//! so every rule can report a precise location without a mapping table.
//!
//! The lexer is *lossless over code*: every non-whitespace byte of the
//! input belongs to exactly one token, tokens never overlap, and spans are
//! strictly increasing. Comments are kept in the stream (classified, not
//! dropped) so the tokenizer differential test can prove it masks the same
//! comment/string regions as the old preprocessor.
//!
//! It is deliberately *not* a full lexer for every dark corner of Rust —
//! it handles everything that appears in this workspace (nested block
//! comments, raw/byte strings, char-vs-lifetime disambiguation, float
//! literals vs ranges vs method calls on integers, suffixed literals) and
//! degrades to single-byte `Punct` tokens for anything else.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `for`, `unwrap`, `r#type`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — the tick plus the name.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`, `1.`).
    Float,
    /// String literal, including raw (`r#".."#`) and byte (`b".."`) forms.
    Str,
    /// Char or byte-char literal body (`'x'`, `'\n'`).
    Char,
    /// `// ...` comment (newline excluded).
    LineComment,
    /// `/* ... */` comment, nesting-aware.
    BlockComment,
    /// Punctuation: single bytes plus a small set of joined operators
    /// (`::`, `->`, `==`, `!=`, `..`, `&&`, ...).
    Punct,
}

/// One token: classification plus its span and position in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based byte column of `start` within its line.
    pub col: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Is this token trivia (a comment)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Operators joined into a single `Punct` token, longest first.
const JOINED: [&str; 22] = [
    "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into a token stream. Whitespace is skipped (it survives as
/// gaps between spans); everything else becomes a token.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        line_start: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: usize,
    line_start: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'\n' => {
                    self.i += 1;
                    self.line += 1;
                    self.line_start = self.i;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.plain_string(self.i),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'"') => self.plain_string(self.i),
                b'r' if self.peek(1) == Some(b'#') && self.ident_start_at(self.i + 2) => {
                    // Raw identifier `r#type`.
                    let start = self.i;
                    self.i += 2;
                    self.consume_ident();
                    self.push(TokenKind::Ident, start);
                }
                b'\'' => self.tick(),
                b'0'..=b'9' => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    let start = self.i;
                    self.consume_ident();
                    self.push(TokenKind::Ident, start);
                }
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn ident_start_at(&self, i: usize) -> bool {
        matches!(self.bytes.get(i), Some(b) if b.is_ascii_alphabetic() || *b == b'_')
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.i,
            line: self.line,
            col: start - self.line_start + 1,
        });
    }

    /// Pushes a token whose span may contain newlines: position is of the
    /// start, and line accounting is advanced over the span afterwards.
    fn push_multiline(&mut self, kind: TokenKind, start: usize, start_line: usize, col: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.i,
            line: start_line,
            col,
        });
    }

    /// Advances `self.line`/`line_start` over newlines in `start..self.i`.
    fn account_newlines(&mut self, start: usize) {
        for j in start..self.i {
            if self.bytes[j] == b'\n' {
                self.line += 1;
                self.line_start = j + 1;
            }
        }
    }

    fn consume_ident(&mut self) {
        while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.i += 1;
        }
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokenKind::LineComment, start);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let (line, col) = (self.line, start - self.line_start + 1);
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.bytes[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.i += 1;
            }
        }
        self.push_multiline(TokenKind::BlockComment, start, line, col);
        self.account_newlines(start);
    }

    /// Does a raw string (`r"`, `r#"`, `br#"`, ...) start at `self.i`?
    fn raw_string_ahead(&self) -> bool {
        let mut j = self.i;
        if self.bytes[j] == b'b' {
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        while self.bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        self.bytes.get(j) == Some(&b'"')
    }

    fn raw_string(&mut self) {
        let start = self.i;
        let (line, col) = (self.line, start - self.line_start + 1);
        if self.bytes[self.i] == b'b' {
            self.i += 1;
        }
        self.i += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'"'
                && self.bytes.len() - (self.i + 1) >= hashes
                && self.bytes[self.i + 1..self.i + 1 + hashes]
                    .iter()
                    .all(|&b| b == b'#')
            {
                self.i += 1 + hashes;
                self.push_multiline(TokenKind::Str, start, line, col);
                self.account_newlines(start);
                return;
            }
            self.i += 1;
        }
        self.push_multiline(TokenKind::Str, start, line, col);
        self.account_newlines(start);
    }

    /// Lexes a `"..."` string starting at `start` (which may be the `b` of
    /// a byte string; `self.i` still points at `start`).
    fn plain_string(&mut self, start: usize) {
        let (line, col) = (self.line, start - self.line_start + 1);
        if self.bytes[self.i] == b'b' {
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.i = self.i.min(self.bytes.len());
        self.push_multiline(TokenKind::Str, start, line, col);
        self.account_newlines(start);
    }

    /// A `'`: char literal or lifetime. Mirrors the old masker's
    /// disambiguation exactly (the differential test depends on it): an
    /// escaped char scans a bounded window for the closing quote; an
    /// unescaped one requires exactly one UTF-8 char between quotes;
    /// anything else is a lifetime (or a lone tick).
    fn tick(&mut self) {
        let start = self.i;
        match self.bytes.get(start + 1) {
            Some(b'\\') => {
                let mut j = start + 2;
                while j < self.bytes.len() && j < start + 16 && self.bytes[j] != b'\n' {
                    if self.bytes[j] == b'\'' {
                        self.i = j + 1;
                        self.push(TokenKind::Char, start);
                        return;
                    }
                    j += 1;
                }
                // No closing quote in range: treat the tick as punctuation.
                self.i = start + 1;
                self.push(TokenKind::Punct, start);
            }
            Some(&next) => {
                let width = match next {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                if self.bytes.get(start + 1 + width) == Some(&b'\'') {
                    self.i = start + 2 + width;
                    self.push(TokenKind::Char, start);
                } else if next.is_ascii_alphabetic() || next == b'_' {
                    self.i = start + 1;
                    self.consume_ident();
                    self.push(TokenKind::Lifetime, start);
                } else {
                    self.i = start + 1;
                    self.push(TokenKind::Punct, start);
                }
            }
            None => {
                self.i = start + 1;
                self.push(TokenKind::Punct, start);
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let mut float = false;
        if self.bytes[self.i] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.i += 2;
            while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                self.i += 1;
            }
            self.push(TokenKind::Int, start);
            return;
        }
        self.consume_digits();
        // Fractional part: a `.` belongs to the number only when it is not
        // the start of a range (`0..n`) or a method call (`1.max(2)`).
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let is_range = after == Some(b'.');
            let is_method = matches!(after, Some(b) if b.is_ascii_alphabetic() || b == b'_');
            if !is_range && !is_method {
                float = true;
                self.i += 1;
                self.consume_digits();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (a, b) = (self.peek(1), self.peek(2));
            let exp = matches!(a, Some(b) if b.is_ascii_digit())
                || (matches!(a, Some(b'+' | b'-')) && matches!(b, Some(d) if d.is_ascii_digit()));
            if exp {
                float = true;
                self.i += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                self.consume_digits();
            }
        }
        // Suffix (`u64`, `f32`, ...).
        let suffix_start = self.i;
        while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.i += 1;
        }
        let suffix = &self.src[suffix_start..self.i];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            start,
        );
    }

    fn consume_digits(&mut self) {
        while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            self.i += 1;
        }
    }

    fn punct(&mut self) {
        let start = self.i;
        let rest = &self.src[self.i..];
        for op in JOINED {
            if rest.starts_with(op) {
                self.i += op.len();
                self.push(TokenKind::Punct, start);
                return;
            }
        }
        // Single token: one byte for ASCII, one char for anything else so
        // spans never split a UTF-8 sequence.
        let width = self.src[self.i..].chars().next().map_or(1, char::len_utf8);
        self.i += width;
        self.push(TokenKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_joins() {
        let ks = kinds("a::b != c.d()");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "::", "b", "!=", "c", ".", "d", "(", ")"]);
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0..10")[0].0, TokenKind::Int);
        assert_eq!(kinds("0..10")[1].1, "..");
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFFu32")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000.5")[0].0, TokenKind::Float);
    }

    #[test]
    fn strings_chars_lifetimes() {
        let ks = kinds("f(\"a\\\"b\", b\"z\")");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; }";
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'y'"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "let s = r#\"panic!\"#; let r#type = 1;";
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("panic")));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn comments_kept_and_classified() {
        let ks = kinds("a // line\n/* b /* nested */ */ c");
        assert_eq!(ks[1].0, TokenKind::LineComment);
        assert_eq!(ks[2].0, TokenKind::BlockComment);
        assert!(ks[2].1.contains("nested"));
        assert_eq!(ks[3].1, "c");
    }

    #[test]
    fn spans_monotonic_and_gaps_are_whitespace() {
        let src = "fn f(x: u8) -> u8 { x + 1 } // done\n\"s\"";
        let toks = lex(src);
        let mut prev = 0usize;
        for t in &toks {
            assert!(t.start >= prev, "overlap at {t:?}");
            assert!(src[prev..t.start].bytes().all(|b| b.is_ascii_whitespace()));
            assert!(t.end > t.start);
            prev = t.end;
        }
        assert!(src[prev..].bytes().all(|b| b.is_ascii_whitespace()));
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "a\n  bb\n/* x\ny */ z";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
        assert_eq!((toks[3].line, toks[3].col), (4, 6));
    }
}
