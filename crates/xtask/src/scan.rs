//! Source-level scanning: builds the per-file token [`context`](crate::context)
//! and runs every source rule family over it.
//!
//! Rule precedence: `hash-float-accum` runs first and claims the hash
//! iteration calls it subsumes; `partial-cmp-expect` claims the chained
//! `.unwrap()`/`.expect(..)`; the generic rules then skip claimed sites so
//! one defect yields one finding.

use crate::context::FileCtx;
use crate::rules;
use crate::Violation;
use std::collections::BTreeSet;

/// Scans one source file and returns every violation outside test-only
/// items. `file` is the workspace-relative label used in reports and the
/// per-crate rule exemptions.
pub fn scan_source(file: &str, source: &str) -> Vec<Violation> {
    let ctx = FileCtx::new(file, source);
    let mut claimed: BTreeSet<usize> = BTreeSet::new();
    let mut out = Vec::new();
    rules::float_order::check(&ctx, &mut claimed, &mut out);
    rules::panic_safety::check(&ctx, &mut claimed, &mut out);
    rules::determinism::check(&ctx, &mut claimed, &mut out);
    rules::runtime_gates::check(&ctx, &mut out);
    rules::casts::check(&ctx, &mut out);
    out.sort_by(|a, b| {
        (a.line, a.col, a.rule, &a.message).cmp(&(b.line, b.col, b.rule, &b.message))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    #[test]
    fn flags_unwrap_and_expect_method_calls_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"g\") }\n\
                   fn h(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, Rule::NoUnwrap);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].rule, Rule::NoExpect);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn flags_panic_family() {
        let src = "fn f() { panic!(\"x\") }\nfn g() { todo!() }\nfn h() { unimplemented!() }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
    }

    #[test]
    fn should_panic_attr_is_not_a_panic() {
        let v = scan_source(
            "t.rs",
            "#[should_panic(expected = \"boom\")]\nfn names() {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "pub fn lib() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(); }\n}\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() { panic!(); } }\n\
                   pub fn late(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoUnwrap);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn float_eq_flagged_outside_ranges() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { x <= 1.0 }\n\
                   fn h(x: f32) -> bool { x != 2f32 }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::FloatEq));
    }

    #[test]
    fn partial_cmp_expect_is_one_specific_violation() {
        let src =
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PartialCmpExpect);
    }

    #[test]
    fn total_cmp_comparator_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_parallel_crate() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { std::thread::scope(|_| {}); }\n\
                   fn h() { std::thread::Builder::new(); }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::AdHocThreading));
    }

    #[test]
    fn parallel_crate_may_spawn_threads() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(scan_source("crates/parallel/src/pool.rs", src).is_empty());
    }

    #[test]
    fn non_spawning_thread_apis_are_clean() {
        let src = "fn f() -> usize {\n\
                   std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n\
                   }\n\
                   thread_local! { static X: u8 = 0; }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::AdHocThreading), "{v:?}");
    }

    #[test]
    fn thread_spawn_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n";
        assert!(scan_source("crates/nn/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn clock_reads_flagged_outside_obs_and_bench() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n\
                   fn g() { let _ = std::time::SystemTime::now(); }\n";
        let v = scan_source("crates/eval/src/pipelines/efficiency.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::AdHocTiming));
        assert!(scan_source("crates/obs/src/span.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/bin/parallel.rs", src).is_empty());
    }

    #[test]
    fn non_clock_time_apis_are_clean() {
        let src = "fn f(t: std::time::Instant) -> std::time::Duration { t.elapsed() }\n\
                   fn g() -> u64 { std::time::Duration::from_secs(1).as_secs() }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::AdHocTiming), "{v:?}");
    }

    #[test]
    fn clock_reads_in_tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { std::time::Instant::now(); } }\n";
        assert!(scan_source("crates/nn/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// x.unwrap() panic!\nconst HELP: &str = \"never .unwrap() here\";\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn hash_iter_method_form_flagged_unless_sorted() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n\
                   let out: Vec<u32> = m.keys().copied().collect();\n\
                   out\n\
                   }\n\
                   fn g(m: &HashMap<u32, f64>) -> Vec<u32> {\n\
                   let mut out: Vec<u32> = m.keys().copied().collect();\n\
                   out.sort_unstable();\n\
                   out\n\
                   }\n";
        let v = scan_source("t.rs", src);
        // The unsorted Vec collect is the stronger `unbounded-collect`
        // finding, which claims the chain so `hash-iter` stays quiet; the
        // sorted variant in `g` is clean under both rules.
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnboundedCollect);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unbounded_collect_requires_vec_evidence() {
        // Collecting into a HashSet (turbofish, no `Vec` in the statement)
        // is not an unbounded collect — `hash-iter` keeps the site.
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn f(m: &HashMap<u32, f64>) -> HashSet<u32> {\n\
                   let out = m.keys().copied().collect::<HashSet<u32>>();\n\
                   out\n\
                   }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIter);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unbounded_collect_turbofish_form() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n\
                   m.keys().copied().collect::<Vec<u32>>()\n\
                   }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnboundedCollect);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn hash_iter_for_loop_form() {
        let src = "fn f(set: std::collections::HashSet<u32>) -> u32 {\n\
                   let mut acc = 0;\n\
                   for x in &set { acc ^= x; }\n\
                   acc\n\
                   }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIter);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = "fn f(m: &std::collections::BTreeMap<u32, f64>) -> f64 {\n\
                   m.values().sum::<f64>()\n\
                   }\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn hash_float_accum_subsumes_hash_iter() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().sum::<f64>()\n\
                   }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashFloatAccum);
    }

    #[test]
    fn integer_sum_over_hash_values_is_not_float_accum() {
        let src = "fn f(m: &std::collections::HashMap<u32, u64>) -> u64 {\n\
                   m.values().sum()\n\
                   }\n";
        let v = scan_source("t.rs", src);
        // Still a hash-iter finding (`values()` on a hash map), but not a
        // float-accumulation one.
        assert!(v.iter().all(|v| v.rule == Rule::HashIter), "{v:?}");
    }

    #[test]
    fn unseeded_rng_sources_flagged() {
        let src = "fn f() -> u64 { let mut r = thread_rng(); rand::random() }\n\
                   fn g() { let s = std::collections::hash_map::RandomState::new(); let _ = s; }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::UnseededRng));
    }

    #[test]
    fn lossy_casts_flagged() {
        let src = "fn f(x: f64, n: usize) -> f32 { (x as f32) + (n as f32) }\n\
                   fn g(i: u64) -> u32 { i as u64 as u32 }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::LossyCast));
    }

    #[test]
    fn benign_casts_are_clean() {
        let src = "fn f(x: f32, v: &[f64]) -> usize { (x.round()) as usize + v.len() }\n\
                   fn g(c: u8) -> f32 { c as f32 }\n\
                   fn h(n: usize) -> f64 { n as f64 }\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn boxed_error_in_pub_signature_flagged() {
        let src = "pub fn load(p: &str) -> Result<u8, Box<dyn std::error::Error>> { Ok(0) }\n\
                   fn private(p: &str) -> Result<u8, Box<dyn std::error::Error>> { Ok(0) }\n\
                   pub fn boxed_ok(v: u8) -> Box<dyn Iterator<Item = u8>> { Box::new(std::iter::once(v)) }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BoxedErrorPub);
        assert_eq!(v[0].line, 1);
    }
}
