//! Source-level rules: panic-freedom, float comparisons and comparator
//! hygiene, applied outside `#[cfg(test)]`/`#[test]` items.

use crate::mask::mask_comments_and_strings;
use crate::{Rule, Violation};

/// Scans one source file (already masked internally) and returns every
/// violation outside test-only items. `file` is the label used in reports.
pub fn scan_source(file: &str, source: &str) -> Vec<Violation> {
    let masked = mask_comments_and_strings(source);
    let bytes = masked.as_bytes();
    let line_starts = line_starts(&masked);
    let tests = test_regions(&masked);
    let in_test = |off: usize| tests.iter().any(|&(s, e)| off >= s && off < e);

    let mut out = Vec::new();
    let mut chained = Vec::new(); // `.expect`/`.unwrap` offsets already
                                  // reported by partial-cmp-expect

    for off in find_word(bytes, b"partial_cmp") {
        if in_test(off) {
            continue;
        }
        if let Some(chain_off) = comparator_chain(bytes, off) {
            chained.push(chain_off);
            out.push(Violation {
                file: file.to_string(),
                line: line_of(&line_starts, off),
                rule: Rule::PartialCmpExpect,
                message: "`partial_cmp(..)` comparator unwrapped — use `f64::total_cmp` \
                          (or sort integer keys directly)"
                    .to_string(),
            });
        }
    }

    for off in find_word(bytes, b"unwrap") {
        if in_test(off) || chained.contains(&off) || !is_method_call(bytes, off, b"unwrap") {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: line_of(&line_starts, off),
            rule: Rule::NoUnwrap,
            message: "`.unwrap()` in library code — propagate a typed error or use a `try_*` API"
                .to_string(),
        });
    }

    for off in find_word(bytes, b"expect") {
        if in_test(off) || chained.contains(&off) || !is_method_call(bytes, off, b"expect") {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: line_of(&line_starts, off),
            rule: Rule::NoExpect,
            message: "`.expect(..)` in library code — propagate a typed error or use a `try_*` API"
                .to_string(),
        });
    }

    for name in [&b"panic"[..], b"todo", b"unimplemented"] {
        for off in find_word(bytes, name) {
            if in_test(off) {
                continue;
            }
            let end = off + name.len();
            if bytes.get(end) != Some(&b'!') {
                continue;
            }
            out.push(Violation {
                file: file.to_string(),
                line: line_of(&line_starts, off),
                rule: Rule::NoPanic,
                message: format!(
                    "`{}!` in library code — return a typed error instead",
                    String::from_utf8_lossy(name)
                ),
            });
        }
    }

    // All threading must go through the cpgan-parallel runtime so the
    // determinism contract (fixed chunking, ordered combining) holds
    // everywhere. Only the runtime itself may touch `std::thread` spawning
    // APIs; `thread::available_parallelism` etc. remain fine anywhere.
    if !file.starts_with("crates/parallel/") {
        for off in find_word(bytes, b"thread") {
            if in_test(off) {
                continue;
            }
            let rest = &bytes[off + b"thread".len()..];
            let spawning = [&b"::spawn"[..], b"::scope", b"::Builder"]
                .iter()
                .any(|p| rest.starts_with(p));
            if !spawning {
                continue;
            }
            out.push(Violation {
                file: file.to_string(),
                line: line_of(&line_starts, off),
                rule: Rule::AdHocThreading,
                message: "ad-hoc `std::thread` use outside `crates/parallel` — route \
                          through the cpgan-parallel primitives so chunking stays \
                          deterministic"
                    .to_string(),
            });
        }
    }

    // Wall-clock measurement must go through `cpgan_obs` (spans for
    // aggregated timings, `Stopwatch` for values the caller consumes) so
    // every timing site stays discoverable and obs-gated. Only the
    // observability crate itself and the benchmark harness may read the
    // clock directly.
    if !(file.starts_with("crates/obs/") || file.starts_with("crates/bench/")) {
        for name in [&b"Instant"[..], b"SystemTime"] {
            for off in find_word(bytes, name) {
                if in_test(off) {
                    continue;
                }
                let rest = &bytes[off + name.len()..];
                if !rest.starts_with(b"::now") {
                    continue;
                }
                out.push(Violation {
                    file: file.to_string(),
                    line: line_of(&line_starts, off),
                    rule: Rule::AdHocTiming,
                    message: format!(
                        "ad-hoc `{}::now()` outside cpgan-obs/cpgan-bench — time through \
                         `cpgan_obs::span` or `cpgan_obs::Stopwatch` instead",
                        String::from_utf8_lossy(name)
                    ),
                });
            }
        }
    }

    for (off, lit) in float_eq_sites(&masked) {
        if in_test(off) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: line_of(&line_starts, off),
            rule: Rule::FloatEq,
            message: format!(
                "exact float comparison against `{lit}` — compare with an epsilon or `total_cmp`"
            ),
        });
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Byte offsets where each line begins (index 0 = line 1).
fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line number of byte `off`.
fn line_of(starts: &[usize], off: usize) -> usize {
    match starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte ranges of items marked `#[cfg(test)]` / `#[test]` (their attribute
/// through the matching close brace), computed on masked text.
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'#' && bytes.get(i + 1) == Some(&b'[') {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let attr = &masked[attr_start + 2..j.min(masked.len())];
            if is_test_attr(attr) {
                if let Some(end) = item_end(bytes, j + 1) {
                    regions.push((attr_start, end));
                    i = end;
                    continue;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Is the attribute body (between `#[` and `]`) a test gate?
fn is_test_attr(attr: &str) -> bool {
    let t = attr.trim();
    if t == "test" {
        return true;
    }
    // cfg(test), cfg(all(test, ...)), cfg(any(test, ...)) ...
    if let Some(rest) = t.strip_prefix("cfg") {
        let inner = rest.trim_start();
        if inner.starts_with('(') {
            return inner
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .any(|tok| tok == "test");
        }
    }
    false
}

/// From just past a test attribute, find the end of the annotated item:
/// the matching `}` of its first brace, or the first `;` if braceless.
fn item_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    // Skip further attributes between the test gate and the item.
    while i < bytes.len() {
        match bytes[i] {
            b'#' if bytes.get(i + 1) == Some(&b'[') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            b';' => return Some(i + 1),
            b'{' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some(bytes.len());
            }
            _ => i += 1,
        }
    }
    Some(bytes.len())
}

/// Offsets of `word` occurrences with identifier boundaries on both sides.
fn find_word(bytes: &[u8], word: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    if word.is_empty() || bytes.len() < word.len() {
        return out;
    }
    for i in 0..=bytes.len() - word.len() {
        if &bytes[i..i + word.len()] != word {
            continue;
        }
        let before_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        let after = bytes.get(i + word.len());
        let after_ok = !matches!(after, Some(b) if b.is_ascii_alphanumeric() || *b == b'_');
        if before_ok && after_ok {
            out.push(i);
        }
    }
    out
}

/// Is the `name` at `off` a method call: preceded by `.` (through
/// whitespace) and followed by `(`?
fn is_method_call(bytes: &[u8], off: usize, name: &[u8]) -> bool {
    let mut i = off;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => continue,
            b'.' => break,
            _ => return false,
        }
    }
    let mut j = off + name.len();
    while let Some(&b) = bytes.get(j) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => j += 1,
            b'(' => return true,
            // Turbofish (`.unwrap::<T>()`) doesn't occur for these methods.
            _ => return false,
        }
    }
    false
}

/// If `partial_cmp` at `off` is immediately chained into `.unwrap()` /
/// `.expect(..)`, returns the offset of the chained method name.
fn comparator_chain(bytes: &[u8], off: usize) -> Option<usize> {
    let mut i = off + b"partial_cmp".len();
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    if bytes.get(i) != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    if bytes.get(i) != Some(&b'.') {
        return None;
    }
    i += 1;
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    let rest = &bytes[i.min(bytes.len())..];
    if rest.starts_with(b"unwrap") || rest.starts_with(b"expect") {
        Some(i)
    } else {
        None
    }
}

/// `==`/`!=` sites where one operand is a float literal. Returns the offset
/// of the operator and the literal text.
fn float_eq_sites(masked: &str) -> Vec<(usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = &bytes[i..i + 2];
        if (op == b"==" || op == b"!=")
            && bytes.get(i + 2) != Some(&b'=')
            && (i == 0 || !matches!(bytes[i - 1], b'=' | b'!' | b'<' | b'>'))
        {
            let left = token_before(masked, i);
            let right = token_after(masked, i + 2);
            let lit = [left, right]
                .into_iter()
                .flatten()
                .find(|t| is_float_literal(t));
            if let Some(lit) = lit {
                out.push((i, lit));
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn token_before(masked: &str, op: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut end = op;
    while end > 0 && matches!(bytes[end - 1], b' ' | b'\t') {
        end -= 1;
    }
    let mut start = end;
    while start > 0
        && matches!(bytes[start - 1], b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.')
    {
        start -= 1;
    }
    (start < end).then(|| masked[start..end].to_string())
}

fn token_after(masked: &str, mut i: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    while matches!(bytes.get(i), Some(b' ' | b'\t')) {
        i += 1;
    }
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    let start = i;
    while matches!(
        bytes.get(i),
        Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.')
    ) {
        i += 1;
    }
    (start < i).then(|| masked[start..i].to_string())
}

/// Does `tok` look like a float literal (`0.0`, `1.`, `1e-3`, `2f64`,
/// `1_000.5`)?
fn is_float_literal(tok: &str) -> bool {
    let body = tok.strip_suffix("f32").or_else(|| tok.strip_suffix("f64"));
    let had_suffix = body.is_some();
    let body = body.unwrap_or(tok).replace('_', "");
    if body.is_empty() || !body.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let mut saw_dot = false;
    let mut saw_exp = false;
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '0'..='9' => {}
            '.' if !saw_dot && !saw_exp => saw_dot = true,
            'e' | 'E' if !saw_exp => {
                saw_exp = true;
                if matches!(chars.peek(), Some('+' | '-')) {
                    chars.next();
                }
            }
            _ => return false,
        }
    }
    saw_dot || saw_exp || had_suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_method_calls_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"g\") }\n\
                   fn h(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, Rule::NoUnwrap);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].rule, Rule::NoExpect);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn flags_panic_family() {
        let src = "fn f() { panic!(\"x\") }\nfn g() { todo!() }\nfn h() { unimplemented!() }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
    }

    #[test]
    fn should_panic_attr_is_not_a_panic() {
        let v = scan_source(
            "t.rs",
            "#[should_panic(expected = \"boom\")]\nfn names() {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "pub fn lib() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(); }\n}\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() { panic!(); } }\n\
                   pub fn late(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoUnwrap);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn float_eq_flagged_outside_ranges() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { x <= 1.0 }\n\
                   fn h(x: f32) -> bool { x != 2f32 }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::FloatEq));
    }

    #[test]
    fn partial_cmp_expect_is_one_specific_violation() {
        let src =
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }\n";
        let v = scan_source("t.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PartialCmpExpect);
    }

    #[test]
    fn total_cmp_comparator_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_parallel_crate() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { std::thread::scope(|_| {}); }\n\
                   fn h() { std::thread::Builder::new(); }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::AdHocThreading));
    }

    #[test]
    fn parallel_crate_may_spawn_threads() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(scan_source("crates/parallel/src/pool.rs", src).is_empty());
    }

    #[test]
    fn non_spawning_thread_apis_are_clean() {
        let src = "fn f() -> usize {\n\
                   std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n\
                   }\n\
                   thread_local! { static X: u8 = 0; }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::AdHocThreading), "{v:?}");
    }

    #[test]
    fn thread_spawn_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n";
        assert!(scan_source("crates/nn/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn clock_reads_flagged_outside_obs_and_bench() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n\
                   fn g() { let _ = std::time::SystemTime::now(); }\n";
        let v = scan_source("crates/eval/src/pipelines/efficiency.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::AdHocTiming));
        assert!(scan_source("crates/obs/src/span.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/bin/parallel.rs", src).is_empty());
    }

    #[test]
    fn non_clock_time_apis_are_clean() {
        let src = "fn f(t: std::time::Instant) -> std::time::Duration { t.elapsed() }\n\
                   fn g() -> u64 { std::time::Duration::from_secs(1).as_secs() }\n";
        let v = scan_source("crates/nn/src/matrix.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::AdHocTiming), "{v:?}");
    }

    #[test]
    fn clock_reads_in_tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { std::time::Instant::now(); } }\n";
        assert!(scan_source("crates/nn/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// x.unwrap() panic!\nconst HELP: &str = \"never .unwrap() here\";\n";
        assert!(scan_source("t.rs", src).is_empty());
    }
}
