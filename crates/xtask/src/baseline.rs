//! The ratchet: a checked-in baseline of tolerated pre-existing violations.
//!
//! The baseline maps `(file, rule)` to a violation count. `cargo xtask
//! lint` passes while every current count is at or below its baseline
//! entry; any growth fails the build and prints the offending findings.
//! `--update-baseline` rewrites the file from the current state but
//! refuses to raise any entry — the baseline only ever shrinks, so the
//! workspace converges on zero.
//!
//! Counts (rather than line numbers) keep the file stable under unrelated
//! edits: inserting a doc comment above a tolerated `unwrap` must not
//! invalidate the baseline.

use crate::Violation;
use std::collections::BTreeMap;

/// Tolerated violation counts keyed by `(file, rule-name)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(workspace-relative file, rule name) -> tolerated count`.
    pub entries: BTreeMap<(String, String), usize>,
}

/// Outcome of checking current violations against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Violations above the tolerated count, grouped per `(file, rule)`:
    /// all current findings for that key are listed so the offender is
    /// easy to locate.
    pub new_violations: Vec<Violation>,
    /// `(file, rule, baseline, current)` where the code now does better
    /// than the baseline — ripe for `--update-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Violations covered by the baseline (suppressed).
    pub suppressed: usize,
}

impl CheckReport {
    /// Did the lint pass (no violations beyond the baseline)?
    pub fn passed(&self) -> bool {
        self.new_violations.is_empty()
    }
}

impl Baseline {
    /// Aggregates raw violations into baseline-shaped counts.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.file.clone(), v.rule.name().to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parses the `lint-baseline.toml` format (see [`Baseline::render`]).
    pub fn parse(content: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        let flush = |cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
                     entries: &mut BTreeMap<(String, String), usize>|
         -> Result<(), String> {
            if let Some((file, rule, count)) = cur.take() {
                match (file, rule, count) {
                    (Some(f), Some(r), Some(c)) => {
                        entries.insert((f, r), c);
                        Ok(())
                    }
                    _ => Err("baseline entry missing file, rule or count".to_string()),
                }
            } else {
                Ok(())
            }
        };
        for (idx, raw) in content.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut current, &mut entries)?;
                current = Some((None, None, None));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("baseline line {}: expected `key = value`", idx + 1))?;
            let slot = current
                .as_mut()
                .ok_or_else(|| format!("baseline line {}: value outside [[entry]]", idx + 1))?;
            let value = value.trim();
            match key.trim() {
                "file" => slot.0 = Some(unquote(value)?),
                "rule" => slot.1 = Some(unquote(value)?),
                "count" => {
                    slot.2 = Some(value.parse().map_err(|_| {
                        format!("baseline line {}: count must be an integer", idx + 1)
                    })?)
                }
                other => return Err(format!("baseline line {}: unknown key `{other}`", idx + 1)),
            }
        }
        flush(&mut current, &mut entries)?;
        Ok(Baseline { entries })
    }

    /// Renders the baseline in its canonical checked-in form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Lint baseline for `cargo xtask lint`: pre-existing violations that are\n\
             # tolerated while the workspace ratchets toward zero. The lint refuses to\n\
             # let any entry grow; shrink or remove entries by fixing violations and\n\
             # running `cargo xtask lint --update-baseline`.\n",
        );
        for ((file, rule), count) in &self.entries {
            out.push_str(&format!(
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n"
            ));
        }
        out
    }

    /// Checks `violations` against the baseline.
    pub fn check(&self, violations: &[Violation]) -> CheckReport {
        let current = Baseline::from_violations(violations);
        let mut report = CheckReport::default();
        for (key, &count) in &current.entries {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if count > allowed {
                report.new_violations.extend(
                    violations
                        .iter()
                        .filter(|v| v.file == key.0 && v.rule.name() == key.1)
                        .cloned(),
                );
            } else {
                report.suppressed += count;
                if count < allowed {
                    report
                        .stale
                        .push((key.0.clone(), key.1.clone(), allowed, count));
                }
            }
        }
        for (key, &allowed) in &self.entries {
            if !current.entries.contains_key(key) && allowed > 0 {
                report
                    .stale
                    .push((key.0.clone(), key.1.clone(), allowed, 0));
            }
        }
        report
    }

    /// Computes the replacement baseline for `--update-baseline`: the
    /// current counts, rejected if any entry would grow past `self`.
    pub fn ratchet_to(&self, violations: &[Violation]) -> Result<Baseline, String> {
        let current = Baseline::from_violations(violations);
        let mut grew: Vec<String> = Vec::new();
        for ((file, rule), &count) in &current.entries {
            let allowed = self
                .entries
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            if count > allowed {
                grew.push(format!("{file}: {rule} {allowed} -> {count}"));
            }
        }
        if grew.is_empty() {
            Ok(current)
        } else {
            Err(format!(
                "refusing to grow the baseline (fix the new violations instead):\n  {}",
                grew.join("\n  ")
            ))
        }
    }
}

fn unquote(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn v(file: &str, line: usize, rule: Rule) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            col: 0,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::from_violations(&[
            v("a.rs", 1, Rule::NoUnwrap),
            v("a.rs", 9, Rule::NoUnwrap),
            v("b.rs", 3, Rule::NoPanic),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn check_suppresses_within_budget_and_flags_growth() {
        let base = Baseline::from_violations(&[v("a.rs", 1, Rule::NoUnwrap)]);
        let ok = base.check(&[v("a.rs", 7, Rule::NoUnwrap)]);
        assert!(ok.passed());
        assert_eq!(ok.suppressed, 1);
        let grown = base.check(&[v("a.rs", 7, Rule::NoUnwrap), v("a.rs", 8, Rule::NoUnwrap)]);
        assert!(!grown.passed());
        assert_eq!(grown.new_violations.len(), 2);
    }

    #[test]
    fn improvement_reported_as_stale() {
        let base = Baseline::from_violations(&[
            v("a.rs", 1, Rule::NoUnwrap),
            v("a.rs", 2, Rule::NoUnwrap),
        ]);
        let rep = base.check(&[v("a.rs", 1, Rule::NoUnwrap)]);
        assert!(rep.passed());
        assert_eq!(rep.stale.len(), 1);
        assert_eq!(rep.stale[0].2, 2);
        assert_eq!(rep.stale[0].3, 1);
    }

    #[test]
    fn ratchet_shrinks_but_never_grows() {
        let base = Baseline::from_violations(&[
            v("a.rs", 1, Rule::NoUnwrap),
            v("a.rs", 2, Rule::NoUnwrap),
        ]);
        let shrunk = base
            .ratchet_to(&[v("a.rs", 1, Rule::NoUnwrap)])
            .expect("shrink ok");
        assert_eq!(shrunk.entries[&("a.rs".into(), "no-unwrap".into())], 1);
        let err = base.ratchet_to(&[
            v("a.rs", 1, Rule::NoUnwrap),
            v("a.rs", 2, Rule::NoUnwrap),
            v("a.rs", 3, Rule::NoUnwrap),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(Baseline::parse("[[entry]]\nfile = \"a.rs\"\n").is_err());
        assert!(Baseline::parse("count = 3\n").is_err());
        assert!(
            Baseline::parse("[[entry]]\nfile = \"a\"\nrule = \"no-panic\"\ncount = x\n").is_err()
        );
    }
}
