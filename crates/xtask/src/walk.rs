//! Workspace walking: applies the source and manifest rules over every
//! crate under `crates/` and aggregates the findings.

use crate::manifest::scan_manifest;
use crate::scan::scan_source;
use crate::Violation;
use std::fs;
use std::path::{Path, PathBuf};

/// Lints the whole workspace rooted at `root`: every
/// `crates/*/src/**/*.rs` plus every `crates/*/Cargo.toml`. Paths in the
/// returned violations are workspace-relative with `/` separators, so the
/// baseline file is portable.
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut violations = Vec::new();
    for crate_dir in crate_dirs {
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            let content = read(&manifest)?;
            violations.extend(scan_manifest(&rel_label(root, &manifest), &content));
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            for file in rust_files(&src)? {
                let content = read(&file)?;
                violations.extend(scan_source(&rel_label(root, &file), &content));
            }
        }
    }
    Ok(violations)
}

/// All `.rs` files under `dir`, recursively, sorted.
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in read_dir_sorted(&d)? {
            if entry.is_dir() {
                stack.push(entry);
            } else if entry.extension().is_some_and(|e| e == "rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Workspace-relative, forward-slash label for a path.
fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && read(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!("no workspace root found above {}", start.display()));
        }
    }
}
