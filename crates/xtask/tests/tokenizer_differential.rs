//! Differential test: the PR 6 lexer against the PR 1 masking scanner.
//!
//! `mask.rs` (regex-era comment/string blanking) is kept as the reference
//! oracle: for every `.rs` file in the workspace — sources, tests, and the
//! lint fixtures themselves — the token stream must
//!
//! 1. have strictly monotonic, non-overlapping byte spans,
//! 2. cover every non-whitespace byte (gaps are whitespace only),
//! 3. carry line/column positions consistent with the byte offsets, and
//! 4. classify exactly the same comment/string/char regions that
//!    `mask::mask_comments_and_strings` blanks out.
//!
//! (4) is the load-bearing property: every rule's "never fire inside a
//! literal or comment" guarantee reduces to it.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use xtask::lexer::{lex, TokenKind};
use xtask::mask::mask_comments_and_strings;
use xtask::walk::rust_files;

fn workspace_rust_files() -> Vec<PathBuf> {
    let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives under crates/")
        .to_path_buf();
    let files = rust_files(&crates).expect("walk crates/");
    assert!(
        files.len() > 50,
        "workspace walk looks broken: only {} files",
        files.len()
    );
    files
}

/// Re-derives the masked text from the token stream: blank every byte of a
/// comment/string/char token (newlines survive), keep everything else.
fn mask_via_tokens(src: &str) -> String {
    let mut out = src.as_bytes().to_vec();
    for tok in lex(src) {
        let masked = matches!(
            tok.kind,
            TokenKind::Str | TokenKind::Char | TokenKind::LineComment | TokenKind::BlockComment
        );
        if masked {
            for cell in &mut out[tok.start..tok.end] {
                if *cell != b'\n' {
                    *cell = b' ';
                }
            }
        }
    }
    String::from_utf8(out).expect("blanking ASCII bytes preserves UTF-8")
}

#[test]
fn spans_are_monotonic_and_gaps_are_whitespace() {
    for path in workspace_rust_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for tok in &tokens {
            assert!(
                tok.start < tok.end && tok.end <= src.len(),
                "{}: empty or out-of-range span {}..{}",
                path.display(),
                tok.start,
                tok.end
            );
            assert!(
                tok.start >= prev_end,
                "{}: overlapping spans at byte {}",
                path.display(),
                tok.start
            );
            assert!(
                src[prev_end..tok.start].chars().all(char::is_whitespace),
                "{}: non-whitespace gap {}..{}: {:?}",
                path.display(),
                prev_end,
                tok.start,
                &src[prev_end..tok.start]
            );
            prev_end = tok.end;
        }
        assert!(
            src[prev_end..].chars().all(char::is_whitespace),
            "{}: trailing bytes untokenized",
            path.display()
        );
    }
}

#[test]
fn line_and_column_match_byte_offsets() {
    for path in workspace_rust_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        for tok in lex(&src) {
            let line = 1 + src[..tok.start].bytes().filter(|&b| b == b'\n').count();
            let line_start = src[..tok.start].rfind('\n').map_or(0, |p| p + 1);
            let col = tok.start - line_start + 1;
            assert_eq!(
                (tok.line, tok.col),
                (line, col),
                "{}: token at byte {} misplaced",
                path.display(),
                tok.start
            );
        }
    }
}

#[test]
fn lexer_masks_the_same_regions_as_the_reference_scanner() {
    for path in workspace_rust_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let reference = mask_comments_and_strings(&src);
        let via_tokens = mask_via_tokens(&src);
        if reference != via_tokens {
            let byte = reference
                .bytes()
                .zip(via_tokens.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            let line = 1 + src[..byte].bytes().filter(|&b| b == b'\n').count();
            panic!(
                "{}:{}: lexer and mask.rs disagree near byte {byte}:\n\
                 reference: {:?}\n\
                 tokens:    {:?}",
                path.display(),
                line,
                &reference[byte.saturating_sub(30)..(byte + 30).min(reference.len())],
                &via_tokens[byte.saturating_sub(30)..(byte + 30).min(via_tokens.len())]
            );
        }
    }
}
