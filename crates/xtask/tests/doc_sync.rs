//! Doc-sync: the DESIGN.md §12 rule catalog cannot drift from the rule
//! registry. Every registered rule must have a catalog row with the right
//! family and severity, every catalog row must name a registered rule, and
//! the README must keep its "Static analysis" section.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use xtask::Rule;

fn repo_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn design_section_12() -> String {
    let design = repo_file("DESIGN.md");
    let start = design
        .find("## 12.")
        .expect("DESIGN.md must have a §12 (static analysis)");
    let rest = &design[start..];
    let end = rest[3..].find("\n## ").map_or(rest.len(), |p| p + 3);
    rest[..end].to_string()
}

/// Catalog table rows: `(rule name, family, severity)`.
fn catalog_rows(section: &str) -> Vec<(String, String, String)> {
    section
        .lines()
        .filter(|l| l.starts_with("| `"))
        .map(|l| {
            let cells: Vec<&str> = l.split('|').map(str::trim).collect();
            // "| `name` | family | severity | ... |" splits into
            // ["", "`name`", "family", "severity", ...].
            assert!(cells.len() >= 4, "malformed catalog row: {l}");
            (
                cells[1].trim_matches('`').to_string(),
                cells[2].to_string(),
                cells[3].to_string(),
            )
        })
        .collect()
}

#[test]
fn every_registered_rule_is_documented_in_design_md() {
    let rows = catalog_rows(&design_section_12());
    for rule in Rule::ALL {
        let row = rows.iter().find(|(name, _, _)| name == rule.name());
        let (_, family, severity) =
            row.unwrap_or_else(|| panic!("rule `{rule}` missing from the DESIGN.md §12 catalog"));
        assert_eq!(
            family,
            rule.family(),
            "`{rule}` catalog family drifted from the registry"
        );
        assert_eq!(
            severity,
            rule.severity().name(),
            "`{rule}` catalog severity drifted from the registry"
        );
    }
}

#[test]
fn every_documented_rule_is_registered() {
    for (name, _, _) in catalog_rows(&design_section_12()) {
        assert!(
            Rule::from_name(&name).is_some(),
            "DESIGN.md §12 documents `{name}`, which is not a registered rule"
        );
    }
}

#[test]
fn explain_covers_every_rule_without_panicking() {
    for rule in Rule::ALL {
        let text = xtask::rules::explain(rule);
        assert!(
            text.starts_with(rule.name()),
            "--explain {rule} renders the wrong header: {text:?}"
        );
    }
}

#[test]
fn readme_keeps_the_static_analysis_section() {
    let readme = repo_file("README.md");
    assert!(
        readme.contains("## Static analysis"),
        "README lost its Static analysis section"
    );
    for needle in ["cargo xtask lint", "--explain", "lint-baseline.toml"] {
        assert!(readme.contains(needle), "README section lost `{needle}`");
    }
}
