//! Fixture: hash iteration frozen into an unsorted `Vec`
//! (`unbounded-collect`).

use std::collections::{BTreeSet, HashMap, HashSet};

/// Line 8: annotated Vec target, never sorted — fires.
pub fn frozen_order(map: &HashMap<u32, f64>) -> Vec<u32> {
    let ids: Vec<u32> = map.keys().copied().collect();
    ids
}

/// Line 14: turbofish Vec target — fires.
pub fn turbofish(set: &HashSet<u32>) -> Vec<u32> {
    set.iter().copied().collect::<Vec<u32>>()
}

/// Negative: collected then sorted before use.
pub fn sorted(map: &HashMap<u32, f64>) -> Vec<u32> {
    let mut ids: Vec<u32> = map.keys().copied().collect();
    ids.sort_unstable();
    ids
}

/// Negative: a BTree target is self-ordering.
pub fn btree_target(map: &HashMap<u32, f64>) -> BTreeSet<u32> {
    map.keys().copied().collect::<BTreeSet<u32>>()
}

/// Negative for this rule (no Vec evidence): plain `hash-iter` keeps the
/// site — line 31.
pub fn hashset_target(map: &HashMap<u32, f64>) -> HashSet<u32> {
    map.keys().copied().collect::<HashSet<u32>>()
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "let v: Vec<u32> = map.keys().collect();"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_freeze_hash_order() {
        let mut m = HashMap::new();
        m.insert(1u32, 2.0f64);
        let ids: Vec<u32> = m.keys().copied().collect();
        assert_eq!(ids.len(), 1);
    }
}
