//! Fixture: ad-hoc wall-clock reads.

/// Line 5 reads `Instant::now()` directly.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Line 10 reads `SystemTime::now()` directly.
pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

/// Non-violations: type mentions without a clock read, and the sanctioned
/// wrappers.
pub fn fine(t: std::time::Instant) -> u64 {
    let sw = cpgan_obs::Stopwatch::start();
    let _ = t;
    sw.elapsed_ns()
}

#[cfg(test)]
mod tests {
    /// Tests may time things directly.
    fn bench_ok() -> std::time::Instant {
        std::time::Instant::now()
    }
}
