//! Fixture: iteration over hash-ordered collections (`hash-iter`).

use std::collections::{BTreeMap, HashMap, HashSet};

/// Line 7: method-form iteration over a hash-map parameter.
pub fn degree_total(map: &HashMap<u32, u32>) -> u32 {
    map.keys().copied().sum()
}

pub struct Pool {
    members: HashSet<u32>,
}

impl Pool {
    /// Line 18: for-loop over a hash-set field.
    pub fn emit(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for m in &self.members {
            out.push(*m);
        }
        out
    }
}

/// Negative: BTreeMap iterates in key order.
pub fn btree_total(bmap: &BTreeMap<u32, u32>) -> u32 {
    bmap.keys().copied().sum()
}

/// Negative: hash iteration immediately collected and sorted.
pub fn sorted_drain(set: &HashSet<u32>) -> Vec<u32> {
    let mut v: Vec<u32> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "for x in map { map.keys() }"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_iterate_in_hash_order() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(degree_total(&m), 1);
        for k in m.keys() {
            let _ = k;
        }
    }
}
