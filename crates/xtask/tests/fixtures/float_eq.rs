//! Fixture: exact float comparisons.

/// Line 5 compares `== 0.0`.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Line 10 compares `!= 1.5f32`.
pub fn not_mid(x: f32) -> bool {
    x != 1.5f32
}

/// Non-violations: ordering comparisons and integer equality.
pub fn fine(x: f64, n: usize) -> bool {
    x <= 0.5 && x >= -0.5 && n == 0
}
