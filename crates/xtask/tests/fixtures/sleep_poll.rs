//! Fixture: sleep-poll loops (and the sanctioned non-violations).

/// Line 6 sleeps inside a `while` loop — a poll.
pub fn spin_wait(flag: &std::sync::atomic::AtomicBool) {
    while !flag.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Line 14 re-arms a short read timeout every turn of a `loop` — the
/// connection-per-request shutdown dance.
pub fn timeout_poll(stream: &std::net::TcpStream, stop: &std::sync::atomic::AtomicBool) {
    loop {
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
        if stop.load(std::sync::atomic::Ordering::Acquire) {
            break;
        }
    }
}

/// Line 24 sleeps inside a `for` sweep — still a poll.
pub fn backoff(tries: usize) {
    for _ in 0..tries {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// Non-violations: a sleep outside any loop, a timeout armed once before
/// the loop, and a loop that blocks on nothing.
pub fn fine(stream: &std::net::TcpStream) {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = stream.set_read_timeout(None);
    let mut n = 0;
    while n < 3 {
        n += 1;
    }
}

pub struct Waiter;

/// A trait `for` must not be mistaken for a loop header.
impl std::fmt::Display for Waiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("waiter")
    }
}

#[cfg(test)]
mod tests {
    /// Tests may sleep-poll (integration helpers waiting on a server).
    fn test_poll() {
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
            break;
        }
    }
}
