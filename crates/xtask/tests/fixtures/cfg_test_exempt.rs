//! Fixture: every violation lives inside test-only items, so the lint
//! must report nothing.

/// Clean library function so the file has non-test content.
pub fn library_code(x: u8) -> u8 {
    x.saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_panic() {
        assert_eq!(library_code(1), 2);
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let x = 0.25f64;
        assert!(x == 0.25);
        if false {
            panic!("unreachable");
        }
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod slow_tests {
    #[test]
    fn gated_test_is_also_exempt() {
        None::<u8>.expect("still exempt");
    }
}
