//! Fixture: float reductions over hash-ordered collections
//! (`hash-float-accum`), which subsume the underlying `hash-iter`.

use std::collections::{BTreeMap, HashMap};

/// Line 8: the sum's addition order is the map's hash order.
pub fn mass(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

/// Line 13: fold over hash order with a float accumulator.
pub fn log_mass(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0f64, |acc, w| acc + w.ln())
}

/// Line 19: an integer reduction is order-insensitive — this is plain
/// `hash-iter`, not a float-accumulation finding.
pub fn arity(weights: &HashMap<u32, f64>) -> usize {
    weights.keys().count()
}

/// Negative: collect-and-sort before the reduction fixes the order.
pub fn mass_sorted(weights: &HashMap<u32, f64>) -> f64 {
    let mut entries: Vec<(u32, f64)> = weights.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable_by_key(|e| e.0);
    entries.iter().map(|e| e.1).sum::<f64>()
}

/// Negative: a BTreeMap iterates in key order.
pub fn mass_btree(ordered: &BTreeMap<u32, f64>) -> f64 {
    ordered.values().sum::<f64>()
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "weights.values().sum::<f64>()"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_reduce_in_hash_order() {
        let mut m = HashMap::new();
        m.insert(1u32, 0.5f64);
        let direct: f64 = m.values().sum();
        assert!(direct > 0.0 && mass(&m) > 0.0);
    }
}
