//! Fixture: `.unwrap()` and `.expect(..)` in library code.

/// Line 5 unwraps.
pub fn first(x: Option<u8>) -> u8 {
    x.unwrap()
}

/// Line 10 expects.
pub fn second(x: Option<u8>) -> u8 {
    x.expect("always present")
}

/// Non-violations: the `_or` family is fine.
pub fn third(x: Option<u8>) -> u8 {
    x.unwrap_or_default()
}
