//! Fixture: `partial_cmp` comparators unwrapped inline.

/// Line 5 sorts with `partial_cmp(..).expect(..)`.
pub fn sort_expect(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
}

/// Line 10 sorts with `partial_cmp(..).unwrap()`.
pub fn sort_unwrap(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Non-violation: `total_cmp` needs no unwrapping.
pub fn sort_total(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
