//! Fixture: the panic macro family in library code.

/// Line 5 panics.
pub fn a() {
    panic!("boom");
}

/// Line 10 is a todo.
pub fn b() {
    todo!()
}

/// Line 15 is unimplemented.
pub fn c() {
    unimplemented!("later")
}
