//! Fixture: environment-derived entropy (`unseeded-rng`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Line 8: `thread_rng` draws entropy from the environment.
pub fn env_rng_value() -> f64 {
    rand::thread_rng().gen()
}

/// Line 13: `from_entropy` seeds from the OS.
pub fn entropy_rng() -> StdRng {
    StdRng::from_entropy()
}

/// Lines 18-19: `OsRng` and `rand::random` both bypass the run seed.
pub fn os_pair() -> (u64, f32) {
    let a = rand::rngs::OsRng.gen();
    let b = rand::random();
    (a, b)
}

/// Lines 24 and 25: an explicit `RandomState` is per-process hash entropy.
pub fn hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

/// Negative: seeding from an explicit run seed is the sanctioned idiom.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Negative: a name merely containing `random` is not an entropy source.
pub fn random_walk_len(steps: usize) -> usize {
    steps * 2
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "thread_rng() / OsRng / from_entropy() / RandomState"
}

#[cfg(test)]
mod tests {
    use rand::Rng;

    #[test]
    fn tests_may_use_env_entropy() {
        let x: f64 = rand::thread_rng().gen();
        assert!((0.0..1.0).contains(&x));
    }
}
