//! Fixture: the timing idiom of the bench binaries (best-of rep loops
//! reading the clock directly). Exempt under `crates/bench/`, a violation
//! anywhere else.

fn time_once(f: impl Fn()) -> f64 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn best_of(reps: usize, f: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(time_once(&f));
    }
    best
}

fn main() {
    let t = best_of(3, || std::hint::black_box(1 + 1));
    println!("{t}");
}
