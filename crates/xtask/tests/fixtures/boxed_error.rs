//! Fixture: type-erased errors on public APIs (`boxed-error-pub`).

use std::error::Error;

/// Line 6: `Box<dyn Error>` on a public signature.
pub fn load() -> Result<(), Box<dyn Error>> {
    Ok(())
}

/// Line 11: erased error with auto-trait bounds is still erased.
pub fn run() -> Result<u8, Box<dyn Error + Send + Sync + 'static>> {
    Ok(0)
}

/// Negative: private helpers may erase.
fn helper() -> Result<(), Box<dyn Error>> {
    Ok(())
}

/// Negative: a typed error on a public signature.
pub struct ParseError;

pub fn parse(ok: bool) -> Result<u8, ParseError> {
    if ok {
        Ok(1)
    } else {
        Err(ParseError)
    }
}

/// Negative: a box of data, not an error.
pub fn boxed_data() -> Box<Vec<u8>> {
    Box::new(Vec::new())
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "pub fn x() -> Box<dyn Error>"
}

pub fn use_private() -> bool {
    helper().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helpers may erase errors.
    pub fn test_helper() -> Result<(), Box<dyn Error>> {
        Ok(())
    }

    #[test]
    fn uses_helpers() {
        assert!(test_helper().is_ok() && load().is_ok());
    }
}
