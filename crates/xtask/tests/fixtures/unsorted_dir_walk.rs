//! Fixture: `fs::read_dir` consumed without sorting (`unsorted-dir-walk`).

use std::fs;
use std::path::PathBuf;

/// Line 9: entries iterated directly, no sort anywhere — fires.
pub fn walk_unsorted(dir: &str) -> std::io::Result<usize> {
    let mut count = 0;
    for entry in fs::read_dir(dir)? {
        let _ = entry?;
        count += 1;
    }
    Ok(count)
}

/// Line 18: collected into a Vec but never sorted — fires.
pub fn collect_unsorted(dir: &str) -> std::io::Result<Vec<PathBuf>> {
    let paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    Ok(paths)
}

/// Negative: sorted within the window before use.
pub fn walk_sorted(dir: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    paths.sort();
    Ok(paths)
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "for entry in fs::read_dir(dir)? { .. }"
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Negative: test code is exempt.
    #[test]
    fn in_test_walk() {
        let _ = fs::read_dir(".").map(|it| it.count());
    }
}
