//! Fixture: idiomatic panic-free library code. The lint must report nothing.

/// Fallible parse returning a typed error.
pub fn parse_percentage(s: &str) -> Result<f64, String> {
    let value: f64 = s.parse().map_err(|_| format!("not a number: {s}"))?;
    if (0.0..=100.0).contains(&value) {
        Ok(value)
    } else {
        Err(format!("out of range: {value}"))
    }
}

/// Sorting floats with `total_cmp` — the sanctioned comparator.
pub fn sorted(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(|a, b| a.total_cmp(b));
    values
}

/// Mentions of unwrap() and panic! in comments or "panic! strings" are fine.
pub fn docs_only() -> &'static str {
    "call .unwrap() and panic! freely in here"
}
