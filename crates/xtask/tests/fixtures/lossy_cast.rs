//! Fixture: precision-losing casts (`lossy-cast`).

/// Line 5: tracked `f64` binding demoted to `f32`.
pub fn demote(x: f64) -> f32 {
    x as f32
}

/// Line 10: a 64-bit float literal truncated to `f32`.
pub fn demote_lit() -> f32 {
    0.1f64 as f32
}

/// Line 15: widening to `f64` then truncating to `f32`.
pub fn chain(n: u32) -> f32 {
    n as f64 as f32
}

/// Line 20: pointer-width count into `f32` (lossy past 2^24).
pub fn half(count: usize) -> f32 {
    count as f32 * 0.5
}

/// Line 25: widen-then-truncate integer chain.
pub fn wrap_id(x: u32) -> u32 {
    x as u64 as u32
}

/// Negative: plain index narrowing is routine.
pub fn to_id(idx: usize) -> u32 {
    idx as u32
}

/// Negative: widening casts preserve value.
pub fn widen(x: u32) -> f64 {
    x as f64
}

/// Negative: a call's return type is unknown — out of scope by design.
pub fn ratio(v: &[f32]) -> f32 {
    v.len() as f32
}

/// Negative: masked inside a string literal.
pub fn doc_string() -> &'static str {
    "x as f32 / 0.1f64 as f32 / x as u64 as u32"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_cast_freely() {
        let x = 0.5f64;
        let y = x as f32;
        assert!(y > 0.0 && demote(x) > 0.0);
    }
}
