//! Fixture-driven integration tests for the lint engine: each file under
//! `tests/fixtures/` exercises one rule class (or its exemption), and the
//! baseline tests cover the ratchet semantics end to end.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::PathBuf;
use xtask::baseline::Baseline;
use xtask::manifest::scan_manifest;
use xtask::scan::scan_source;
use xtask::{Rule, Violation};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn scan_fixture(name: &str) -> Vec<Violation> {
    scan_source(name, &fixture(name))
}

#[test]
fn clean_fixture_has_no_findings() {
    let v = scan_fixture("clean.rs");
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
}

#[test]
fn unwrap_and_expect_fixture() {
    let v = scan_fixture("unwrap_expect.rs");
    let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec![Rule::NoUnwrap, Rule::NoExpect], "{v:?}");
    assert_eq!(v[0].line, 5);
    assert_eq!(v[1].line, 10);
}

#[test]
fn panic_family_fixture() {
    let v = scan_fixture("panics.rs");
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
    assert_eq!(
        v.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![5, 10, 15]
    );
}

#[test]
fn float_eq_fixture() {
    let v = scan_fixture("float_eq.rs");
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::FloatEq));
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![5, 10]);
}

#[test]
fn partial_cmp_fixture() {
    let v = scan_fixture("partial_cmp.rs");
    // One specific finding per comparator — the generic no-unwrap/no-expect
    // rules must not double-report the same chain.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::PartialCmpExpect));
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![5, 10]);
}

#[test]
fn timing_fixture() {
    let v = scan_fixture("timing.rs");
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::AdHocTiming));
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![5, 10]);
    // The observability crate and the bench harness are allowed to read the
    // clock directly.
    for exempt in ["crates/obs/src/span.rs", "crates/bench/src/bin/x.rs"] {
        let v = scan_source(exempt, &fixture("timing.rs"));
        assert!(
            v.iter().all(|v| v.rule != Rule::AdHocTiming),
            "{exempt} flagged: {v:?}"
        );
    }
}

#[test]
fn bench_bin_timing_idiom_is_exempt_only_under_bench() {
    // The matmul/parallel bench binaries read the clock in best-of rep
    // loops; that idiom is fine under crates/bench/ and a violation
    // anywhere else — including a bench-sounding module in another crate.
    for exempt in [
        "crates/bench/src/bin/matmul.rs",
        "crates/bench/src/bin/parallel.rs",
        "crates/bench/src/bin/serve.rs",
        "crates/bench/src/lib.rs",
    ] {
        let v = scan_source(exempt, &fixture("timing_bench_bin.rs"));
        assert!(
            v.iter().all(|v| v.rule != Rule::AdHocTiming),
            "{exempt} flagged: {v:?}"
        );
    }
    for flagged in ["crates/nn/src/kernels.rs", "crates/eval/src/bench_like.rs"] {
        let v = scan_source(flagged, &fixture("timing_bench_bin.rs"));
        assert!(
            v.iter().any(|v| v.rule == Rule::AdHocTiming),
            "{flagged} not flagged: {v:?}"
        );
    }
}

#[test]
fn sleep_poll_fixture() {
    let v = scan_fixture("sleep_poll.rs");
    let sp: Vec<_> = v.iter().filter(|v| v.rule == Rule::SleepPoll).collect();
    assert_eq!(sp.len(), 3, "{v:?}");
    assert_eq!(
        sp.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![6, 14, 24]
    );
    // Load generators measure the other side of the socket: short client
    // timeouts inside request loops are the workload, not a poll.
    let v = scan_source("crates/bench/src/bin/serve.rs", &fixture("sleep_poll.rs"));
    assert!(
        v.iter().all(|v| v.rule != Rule::SleepPoll),
        "bench exempt, yet flagged: {v:?}"
    );
}

#[test]
fn hash_iter_fixture() {
    let v = scan_fixture("determinism_hash_iter.rs");
    // Both forms fire (method chain and for-loop); the BTreeMap, the
    // collect-and-sort, the string-masked, and the in-test iterations stay
    // clean.
    assert!(v.iter().all(|v| v.rule == Rule::HashIter), "{v:?}");
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![7, 18]);
}

#[test]
fn unbounded_collect_fixture() {
    let v = scan_fixture("unbounded_collect.rs");
    // The two unsorted Vec collects fire; collect-then-sort and BTree
    // targets stay clean; the HashSet-target collect (no Vec evidence)
    // falls through to plain `hash-iter`; strings and tests are masked.
    assert_eq!(
        v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
        vec![
            (Rule::UnboundedCollect, 8),
            (Rule::UnboundedCollect, 14),
            (Rule::HashIter, 32),
        ],
        "{v:?}"
    );
}

#[test]
fn unsorted_dir_walk_fixture() {
    let v = scan_fixture("unsorted_dir_walk.rs");
    // The bare for-loop walk and the unsorted collect fire; the
    // collect-then-sort walk, the string-masked call, and the in-test walk
    // stay clean.
    assert_eq!(
        v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
        vec![(Rule::UnsortedDirWalk, 9), (Rule::UnsortedDirWalk, 18),],
        "{v:?}"
    );
}

#[test]
fn unseeded_rng_fixture() {
    let v = scan_fixture("unseeded_rng.rs");
    assert!(v.iter().all(|v| v.rule == Rule::UnseededRng), "{v:?}");
    assert_eq!(
        v.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![8, 13, 18, 19, 24, 25]
    );
}

#[test]
fn hash_float_accum_fixture() {
    let v = scan_fixture("hash_float_accum.rs");
    // Float reductions report as hash-float-accum and claim their own
    // iteration call; the integer reduction stays a plain hash-iter.
    assert_eq!(
        v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
        vec![
            (Rule::HashFloatAccum, 8),
            (Rule::HashFloatAccum, 13),
            (Rule::HashIter, 19),
        ],
        "{v:?}"
    );
}

#[test]
fn lossy_cast_fixture() {
    let v = scan_fixture("lossy_cast.rs");
    assert!(v.iter().all(|v| v.rule == Rule::LossyCast), "{v:?}");
    assert_eq!(
        v.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![5, 10, 15, 20, 25]
    );
}

#[test]
fn boxed_error_fixture() {
    let v = scan_fixture("boxed_error.rs");
    // Public erased-error signatures only: private fns, typed errors,
    // non-error boxes, strings, and test helpers stay clean.
    assert!(v.iter().all(|v| v.rule == Rule::BoxedErrorPub), "{v:?}");
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![6, 11]);
}

#[test]
fn cfg_test_items_are_exempt() {
    let v = scan_fixture("cfg_test_exempt.rs");
    assert!(v.is_empty(), "test-only code flagged: {v:?}");
}

#[test]
fn manifest_fixtures() {
    let good = scan_manifest("manifest_good.toml", &fixture("manifest_good.toml"));
    assert!(good.is_empty(), "good manifest flagged: {good:?}");
    let bad = scan_manifest("manifest_bad.toml", &fixture("manifest_bad.toml"));
    assert_eq!(bad.len(), 3, "{bad:?}");
    assert!(bad.iter().all(|v| v.rule == Rule::WorkspaceDeps));
    assert_eq!(
        bad.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![8, 9, 12]
    );
}

#[test]
fn violation_display_format() {
    let v = &scan_fixture("unwrap_expect.rs")[0];
    let line = v.to_string();
    assert!(
        line.starts_with("unwrap_expect.rs:5:7: no-unwrap — "),
        "unexpected format: {line}"
    );
    let json = v.to_json();
    assert!(json.contains("\"file\":\"unwrap_expect.rs\""), "{json}");
    assert!(json.contains("\"line\":5"), "{json}");
    assert!(json.contains("\"col\":7"), "{json}");
    assert!(json.contains("\"rule\":\"no-unwrap\""), "{json}");
    assert!(json.contains("\"family\":\"panic-safety\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let mut findings = scan_fixture("unwrap_expect.rs");
    findings.extend(scan_fixture("panics.rs"));
    findings.extend(scan_fixture("float_eq.rs"));
    let baseline = Baseline::from_violations(&findings);
    let reparsed = Baseline::parse(&baseline.render()).expect("canonical render must parse");
    assert_eq!(reparsed, baseline);
}

#[test]
fn baseline_suppresses_exactly_its_budget() {
    let findings = scan_fixture("panics.rs");
    let baseline = Baseline::from_violations(&findings);
    let report = baseline.check(&findings);
    assert!(report.passed());
    assert_eq!(report.suppressed, findings.len());
}

#[test]
fn baseline_rejects_growth() {
    let findings = scan_fixture("panics.rs");
    let baseline = Baseline::from_violations(&findings[..2]);
    // One more no-panic than the baseline tolerates: check fails...
    let report = baseline.check(&findings);
    assert!(!report.passed());
    assert_eq!(report.new_violations.len(), 3, "{report:?}");
    // ...and --update-baseline refuses to absorb it.
    let err = baseline.ratchet_to(&findings);
    assert!(err.is_err(), "ratchet must refuse growth");
}

#[test]
fn baseline_ratchets_down() {
    let findings = scan_fixture("panics.rs");
    let baseline = Baseline::from_violations(&findings);
    let fewer = &findings[..1];
    let report = baseline.check(fewer);
    assert!(report.passed());
    assert_eq!(report.stale.len(), 1, "{report:?}");
    let next = baseline.ratchet_to(fewer).expect("shrinking is allowed");
    assert_eq!(next.entries.values().sum::<usize>(), 1);
}

#[test]
fn checked_in_workspace_baseline_parses() {
    let content = fixture("../../lint-baseline.toml");
    let baseline = Baseline::parse(&content).expect("checked-in baseline must parse");
    assert!(!baseline.entries.is_empty());
}
