//! Thread-count invariance of the observability report.
//!
//! The cpgan-obs contract: everything in the JSONL output except
//! duration-valued fields (keys ending `_ns`) and the meta line is
//! bit-identical regardless of how many worker threads collected it. This
//! suite runs one instrumented workload at 1, 2, and 4 threads and compares
//! the scrubbed reports byte for byte.

// Integration-test helpers sit outside `#[test]` fns, so the
// allow-panic-in-tests carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_parallel::{with_thread_count, Pool};

/// An instrumented workload touching every metric kind: pool jobs under
/// spans, histograms over integer-valued work sizes, counters, gauges, and
/// per-step series.
fn workload() -> Vec<u64> {
    let _fit = cpgan_obs::span("work.fit");
    cpgan_obs::gauge_set("work.param_count", 1234.0);
    let mut out = Vec::new();
    for epoch in 0..3u64 {
        let _epoch = cpgan_obs::span("work.epoch");
        cpgan_obs::counter_add("work.epochs", 1);
        let items: Vec<u64> = (0..32).collect();
        let mapped = Pool::global().par_map_owned(items, move |i, x| {
            let _job = cpgan_obs::span("work.job");
            cpgan_obs::hist_record("work.job.size", (x % 7 + 1) as f64);
            cpgan_obs::series_record("work.step_val", epoch * 32 + i as u64, (x * x) as f64);
            x * 2 + epoch
        });
        out.extend(mapped);
    }
    out
}

/// Renders the current obs report as JSONL with all timing stripped: the
/// meta line and `_ns`-named counters are dropped, span `total_ns` values
/// are zeroed.
fn scrubbed_jsonl() -> String {
    let report = cpgan_obs::snapshot();
    let mut kept = Vec::new();
    for line in report.to_jsonl().lines() {
        if line.contains("\"t\":\"meta\"") {
            continue;
        }
        if line.contains("\"t\":\"counter\"") && line.contains("_ns\"") {
            continue;
        }
        kept.push(zero_field(line, "\"total_ns\":"));
    }
    kept.join("\n")
}

/// Replaces the numeric run after `key` with `0`, leaving other text alone.
fn zero_field(line: &str, key: &str) -> String {
    let Some(start) = line.find(key) else {
        return line.to_string();
    };
    let digits_at = start + key.len();
    let rest = &line[digits_at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    format!("{}0{}", &line[..digits_at], &rest[end..])
}

#[test]
fn report_is_identical_across_thread_counts() {
    let mut reports = Vec::new();
    let mut values = Vec::new();
    for threads in [1usize, 2, 4] {
        cpgan_obs::reset();
        cpgan_obs::set_enabled(true);
        let out = with_thread_count(threads, workload);
        values.push(out);
        reports.push((threads, scrubbed_jsonl()));
    }
    cpgan_obs::reset();
    cpgan_obs::set_enabled(false);

    let (_, baseline) = &reports[0];
    assert!(
        baseline.contains("\"t\":\"span\"") && baseline.contains("work.fit"),
        "workload produced no span lines:\n{baseline}"
    );
    assert!(baseline.contains("\"t\":\"hist\""), "no hist lines");
    assert!(baseline.contains("\"t\":\"series\""), "no series lines");
    assert!(baseline.contains("\"t\":\"counter\""), "no counter lines");
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report, baseline,
            "scrubbed obs report differs at {threads} threads"
        );
    }
    assert!(
        values.iter().all(|v| v == &values[0]),
        "workload results must also be thread-count invariant"
    );
}
