//! Long-lived named service threads.
//!
//! The workspace's `ad-hoc-threading` lint funnels every `std::thread`
//! spawn through this crate so the deterministic data-parallel tiers stay
//! the only way to *compute* in parallel. Long-lived infrastructure
//! threads — the serving layer's acceptor and request workers — are a
//! different animal: they host I/O loops, not numeric kernels, and their
//! scheduling must never influence computed results. [`spawn_service`] is
//! the sanctioned spawn point for those threads; anything numeric still
//! belongs on [`crate::par_chunks_mut`] / [`crate::Pool`].

use std::io;
use std::thread::JoinHandle;

/// Spawns a named, long-lived service thread running `f`.
///
/// The thread is named `cpgan-<name>` (visible in debuggers and panic
/// messages). Callers own the returned handle and decide when — or
/// whether — to join it; a service thread must not produce values that
/// feed back into deterministic computation except through explicit
/// synchronization (queues, atomics), so thread scheduling never changes
/// numeric results.
pub fn spawn_service<F, T>(name: &str, f: F) -> io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("cpgan-{name}"))
        .spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawns_named_thread_and_joins() {
        let handle = spawn_service("test-svc", || {
            std::thread::current().name().map(str::to_string)
        })
        .unwrap();
        let name = handle.join().unwrap();
        assert_eq!(name.as_deref(), Some("cpgan-test-svc"));
    }

    #[test]
    fn returns_value_through_join() {
        let handle = spawn_service("test-ret", || 41 + 1).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
