//! Persistent thread pool for owned (`'static`) coarse-grained jobs.
//!
//! Workers are spawned lazily, parked on a shared queue, and live for the
//! rest of the process, so repeated fan-outs (one per evaluation-pipeline
//! cell) never pay spawn cost after warm-up. Jobs must be `'static`: the
//! workspace forbids `unsafe_code`, and lending borrowed data to long-lived
//! threads would need lifetime erasure — borrow-based kernels use the scoped
//! tier instead (see [`crate::par_chunks_mut`]).

use crate::threads::current_threads;
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads executing owned jobs.
pub struct Pool {
    sender: Mutex<Sender<Job>>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    /// Number of workers spawned so far; grown on demand up to the largest
    /// concurrently requested parallelism.
    spawned: Mutex<usize>,
}

impl Pool {
    /// The process-wide pool. Workers are only spawned when a fan-out
    /// actually requests parallelism, so serial runs (`CPGAN_THREADS=1`)
    /// never start a thread.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::new)
    }

    fn new() -> Pool {
        let (sender, receiver) = channel::<Job>();
        Pool {
            sender: Mutex::new(sender),
            receiver: Arc::new(Mutex::new(receiver)),
            spawned: Mutex::new(0),
        }
    }

    /// Ensures at least `want` workers exist (workers are never reaped).
    fn ensure_workers(&self, want: usize) {
        let mut spawned = self.spawned.lock();
        while *spawned < want {
            let rx = Arc::clone(&self.receiver);
            let idx = *spawned;
            std::thread::Builder::new()
                .name(format!("cpgan-pool-{idx}"))
                .spawn(move || loop {
                    let job = rx.lock().recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // sender gone: process shutdown
                    }
                })
                .ok();
            *spawned += 1;
        }
    }

    /// Maps `f` over owned `items` on the pool, returning results in item
    /// order.
    ///
    /// Uses `current_threads()` workers (so `CPGAN_THREADS=1` and
    /// [`crate::with_thread_count`]`(1, ..)` run serially inline on the
    /// caller). Results are gathered as `(index, value)` pairs and sorted by
    /// index, so output order is independent of scheduling; for
    /// deterministic `f`, the output is bit-identical at every thread
    /// count. A panicking job is forwarded to the caller after the whole
    /// batch completes.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let workers = current_threads().min(n);
        // The jobs counter is bumped on the caller in BOTH execution paths,
        // so its value is thread-count invariant (obs determinism contract).
        cpgan_obs::counter_add("parallel.pool.jobs", n as u64);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| run_job(&f, i, t))
                .collect();
        }
        self.ensure_workers(workers);
        let f = Arc::new(f);
        let (done_tx, done_rx) = channel();
        {
            let sender = self.sender.lock();
            for (i, item) in items.into_iter().enumerate() {
                let f = Arc::clone(&f);
                let done = done_tx.clone();
                let queued = cpgan_obs::enabled().then(cpgan_obs::Stopwatch::start);
                let job: Job = Box::new(move || {
                    if let Some(q) = queued {
                        cpgan_obs::counter_add("parallel.pool.queue_wait_ns", q.elapsed_ns());
                    }
                    let out = catch_unwind(AssertUnwindSafe(|| run_job(f.as_ref(), i, item)));
                    // The batch channel outlives the job; a send can only
                    // fail if the caller already panicked and dropped the
                    // receiver, in which case the result is moot.
                    let _ = done.send((i, out));
                });
                // Send cannot fail: the receiver lives in `self`.
                let _ = sender.send(job);
            }
        }
        drop(done_tx);
        let mut results = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (i, out) in done_rx {
            match out {
                Ok(r) => results.push((i, r)),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

/// Runs one pool job under an empty observability span stack — in both the
/// serial-inline and worker-thread paths — so span paths recorded inside the
/// job never depend on where (or whether) it was scheduled. Worker busy time
/// accumulates in the `parallel.pool.busy_ns` counter.
fn run_job<T, R>(f: &(impl Fn(usize, T) -> R + Sync), i: usize, item: T) -> R {
    cpgan_obs::with_root_scope(|| {
        if cpgan_obs::enabled() {
            let busy = cpgan_obs::Stopwatch::start();
            let r = f(i, item);
            cpgan_obs::counter_add("parallel.pool.busy_ns", busy.elapsed_ns());
            r
        } else {
            f(i, item)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_thread_count;

    #[test]
    fn owned_map_preserves_order_across_thread_counts() {
        let serial = with_thread_count(1, || {
            Pool::global().par_map_owned((0..40u64).collect(), |i, x| i as u64 * 100 + x * x)
        });
        for threads in [2, 4] {
            let par = with_thread_count(threads, || {
                Pool::global().par_map_owned((0..40u64).collect(), |i, x| i as u64 * 100 + x * x)
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = Pool::global();
        for round in 0..3u64 {
            let out = with_thread_count(4, || {
                pool.par_map_owned(vec![1u64, 2, 3], move |_, x| x + round)
            });
            assert_eq!(out, vec![1 + round, 2 + round, 3 + round]);
        }
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(4, || {
                Pool::global().par_map_owned(vec![0u32, 1, 2, 3], |_, x| {
                    assert!(x != 2, "job blew up");
                    x
                })
            })
        });
        assert!(caught.is_err());
        // The pool survives the panic and still runs new batches.
        let out = with_thread_count(2, || Pool::global().par_map_owned(vec![5u32], |_, x| x * 2));
        assert_eq!(out, vec![10]);
    }
}
