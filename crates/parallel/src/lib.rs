#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic parallel runtime for the workspace's hot paths.
//!
//! Every primitive here upholds one contract: **the result is bit-identical
//! for every thread count**, including `CPGAN_THREADS=1` (pure serial
//! execution). That determinism is what makes the serial-equivalence test
//! layer possible — each parallelized kernel is tested by running it at 1
//! and 4 threads and asserting bitwise-equal outputs.
//!
//! The contract is achieved by construction:
//!
//! * work is split into **fixed-size chunks** whose boundaries depend only
//!   on the problem shape (never on the thread count),
//! * chunk results are **combined in chunk-index order** on the calling
//!   thread, and
//! * the single-thread path runs the *same* chunk loop inline, so there is
//!   exactly one numerical code path.
//!
//! Threads are claimed from `std::thread::available_parallelism`, overridable
//! with the `CPGAN_THREADS` environment variable (`CPGAN_THREADS=1` degrades
//! every primitive to serial execution) and, per thread, with
//! [`with_thread_count`] (used by the equivalence tests to exercise both
//! paths in one process).
//!
//! Two execution tiers (see DESIGN.md §8):
//!
//! * **Scoped tier** — [`par_chunks_mut`], [`par_map`], [`par_reduce`]
//!   borrow caller data directly and run on `std::thread::scope`. The
//!   workspace forbids `unsafe_code`, and lending non-`'static` borrows to
//!   long-lived workers requires lifetime erasure, so the scoped tier spawns
//!   scoped OS threads per call; kernels are chunky enough (≥ milliseconds)
//!   to amortize the ~tens of microseconds of spawn cost.
//! * **Pool tier** — [`Pool`] keeps persistent workers alive for owned
//!   (`'static`) coarse-grained jobs, e.g. the evaluation pipeline's
//!   independent baseline-generator runs ([`Pool::par_map_owned`]).
//!
//! A third, non-numeric entry point, [`spawn_service`], hosts long-lived
//! infrastructure threads (the serving layer's acceptor/workers); it is
//! outside the determinism contract because service threads communicate
//! only through explicit synchronization and never combine numeric
//! results by scheduling order.

mod pool;
mod scoped;
mod service;
mod threads;

pub use pool::Pool;
pub use scoped::{par_chunks_mut, par_map, par_reduce};
pub use service::spawn_service;
pub use threads::{current_threads, with_thread_count};

/// Splits `n` items into fixed chunks of at most `chunk` items and returns
/// the number of chunks. Chunk boundaries depend only on `(n, chunk)` — the
/// determinism contract's anchor.
#[inline]
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// Rows per fixed parallel chunk for a row-blocked kernel over `cols`-wide
/// rows, targeting roughly `grain` elements per chunk (at least one row).
///
/// Depends only on the shape and the grain — never on the thread count —
/// so kernels that split work with it keep the determinism contract. The
/// row-blocked kernels in `cpgan-nn` (dense matmul, CSR×dense, row-wise
/// softmax) all derive their chunking from this one helper.
#[inline]
pub fn grain_rows(grain: usize, cols: usize) -> usize {
    (grain / cols.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_covers_all_items() {
        assert_eq!(chunk_count(0, 8), 0);
        assert_eq!(chunk_count(1, 8), 1);
        assert_eq!(chunk_count(8, 8), 1);
        assert_eq!(chunk_count(9, 8), 2);
        assert_eq!(chunk_count(17, 8), 3);
        assert_eq!(chunk_count(5, 0), 5); // degenerate chunk size clamps to 1
    }

    #[test]
    fn grain_rows_is_shape_determined_and_positive() {
        assert_eq!(grain_rows(4096, 64), 64);
        assert_eq!(grain_rows(4096, 4096), 1);
        assert_eq!(grain_rows(4096, 10_000), 1); // wider than grain: 1 row
        assert_eq!(grain_rows(4096, 0), 4096); // degenerate width clamps to 1
        assert_eq!(grain_rows(0, 7), 1);
    }
}
