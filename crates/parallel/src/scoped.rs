//! Scoped, borrow-based primitives: fixed chunking, index-ordered combining.
//!
//! All three primitives share one execution scheme: the work is split into
//! chunks whose boundaries depend only on the problem shape, a shared queue
//! hands chunks to `current_threads() - 1` scoped helper threads plus the
//! calling thread, and any per-chunk results are re-assembled **in chunk
//! order** on the calling thread. Which thread computes a chunk never
//! affects the value of anything — that is the determinism contract.

use crate::threads::current_threads;
use parking_lot::Mutex;
use std::ops::Range;

/// Applies `f(chunk_index, chunk)` to disjoint consecutive chunks of at most
/// `chunk` elements of `data`, in parallel.
///
/// Chunk boundaries depend only on `(data.len(), chunk)`. Each output
/// element is written by exactly one invocation, so the result is identical
/// for every thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let chunks = crate::chunk_count(data.len(), chunk);
    let workers = current_threads().min(chunks);
    if workers <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let queue = Mutex::new(data.chunks_mut(chunk).enumerate());
    let run = |queue: &Mutex<std::iter::Enumerate<std::slice::ChunksMut<'_, T>>>| loop {
        let next = queue.lock().next();
        match next {
            Some((i, c)) => f(i, c),
            None => break,
        }
    };
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(|| run(&queue));
        }
        run(&queue);
    });
}

/// Maps `f(index, &item)` over `items` in parallel, returning results in
/// item order.
///
/// Intended for coarse-grained items (a BFS, a spectral column, a model
/// fit); each item is its own chunk. Results are gathered as
/// `(index, value)` pairs and sorted by index on the calling thread, so the
/// output order — and, for deterministic `f`, the output itself — is
/// independent of the thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = current_threads().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue = Mutex::new(items.iter().enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let run = || loop {
        let next = queue.lock().next();
        match next {
            Some((i, t)) => {
                let r = f(i, t);
                results.lock().push((i, r));
            }
            None => break,
        }
    };
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(run);
        }
        run();
    });
    let mut pairs = results.into_inner();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Ordered parallel reduction over the index range `0..n`.
///
/// `map` is evaluated on fixed consecutive chunks `i*chunk..min((i+1)*chunk, n)`
/// and the per-chunk results are folded with `combine` **in chunk-index
/// order** on the calling thread:
///
/// ```text
/// combine(combine(map(c0), map(c1)), map(c2)) ...
/// ```
///
/// Because the chunk boundaries and the fold order are both fixed, the
/// result is bit-identical for every thread count even for non-associative
/// floating-point combines. Returns `None` when `n == 0`.
pub fn par_reduce<R, M, C>(n: usize, chunk: usize, map: M, combine: C) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let chunk = chunk.max(1);
    let ranges = move |i: usize| -> Range<usize> { i * chunk..((i + 1) * chunk).min(n) };
    let chunks = crate::chunk_count(n, chunk);
    let workers = current_threads().min(chunks);
    if workers <= 1 {
        return (0..chunks).map(|i| map(ranges(i))).reduce(combine);
    }
    let queue = Mutex::new(0..chunks);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(chunks));
    let run = || loop {
        let next = queue.lock().next();
        match next {
            Some(i) => {
                let r = map(ranges(i));
                results.lock().push((i, r));
            }
            None => break,
        }
    };
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(run);
        }
        run();
    });
    let mut pairs = results.into_inner();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).reduce(combine)
}

#[cfg(test)]
// Tests may assert exact float values: determinism is the feature under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::with_thread_count;

    #[test]
    fn chunks_mut_writes_every_element_once() {
        for threads in [1, 2, 4, 7] {
            let mut data = vec![0u32; 103];
            with_thread_count(threads, || {
                par_chunks_mut(&mut data, 8, |ci, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 8 + k) as u32 + 1;
                    }
                });
            });
            let expect: Vec<u32> = (1..=103).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        let serial = with_thread_count(1, || par_map(&items, |i, &x| i * 1000 + x * x));
        for threads in [2, 3, 4] {
            let par = with_thread_count(threads, || par_map(&items, |i, &x| i * 1000 + x * x));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        // A non-associative float fold: ordering matters, so equality is a
        // real check of the fixed-chunk + ordered-combine contract.
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 * 0.137).collect();
        let sum = |r: Range<usize>| -> f32 { r.map(|i| vals[i] * vals[i]).sum() };
        let serial = with_thread_count(1, || par_reduce(vals.len(), 64, sum, |a, b| a + b));
        for threads in [2, 4, 8] {
            let par = with_thread_count(threads, || par_reduce(vals.len(), 64, sum, |a, b| a + b));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn reduce_empty_is_none() {
        assert_eq!(par_reduce(0, 16, |_| 1u64, |a, b| a + b), None);
    }

    #[test]
    fn reduce_combines_in_index_order() {
        // Concatenation is order-sensitive; the result must read 0,1,2,...
        let out = with_thread_count(4, || {
            par_reduce(
                10,
                3,
                |r| r.map(|i| i.to_string()).collect::<Vec<_>>().join(","),
                |a, b| format!("{a},{b}"),
            )
        });
        assert_eq!(out.as_deref(), Some("0,1,2,3,4,5,6,7,8,9"));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| {});
        let mapped: Vec<u8> = par_map(&Vec::<u8>::new(), |_, &x| x);
        assert!(mapped.is_empty());
    }
}
