//! Thread-count resolution: `CPGAN_THREADS`, per-thread overrides, and the
//! `available_parallelism` default.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`with_thread_count`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-wide default, resolved once: `CPGAN_THREADS` if set and
/// parseable as a positive integer, else `available_parallelism`, else 1.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("CPGAN_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of threads parallel primitives may use on this thread right
/// now: the innermost [`with_thread_count`] override if one is active, else
/// the process default (`CPGAN_THREADS` / `available_parallelism`).
pub fn current_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(default_threads)
        .max(1)
}

/// Runs `f` with the calling thread's parallelism pinned to `n`.
///
/// The override is per-thread and restored on exit (including on unwind), so
/// concurrently running tests do not interfere. Because every primitive is
/// deterministic, `with_thread_count(1, f)` and `with_thread_count(4, f)`
/// must produce bit-identical results — the serial-equivalence suites assert
/// exactly that.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|c| c.set(prev));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_is_scoped_and_restored() {
        let base = current_threads();
        let inner = with_thread_count(3, || {
            let mid = current_threads();
            let nested = with_thread_count(7, current_threads);
            assert_eq!(nested, 7);
            mid
        });
        assert_eq!(inner, 3);
        assert_eq!(current_threads(), base);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        assert_eq!(with_thread_count(0, current_threads), 1);
    }

    #[test]
    fn override_restored_on_unwind() {
        let base = current_threads();
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(5, || {
                assert_eq!(current_threads(), 5);
                std::panic::panic_any("boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(current_threads(), base);
    }
}
