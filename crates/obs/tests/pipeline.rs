//! Enabled-mode end-to-end: spans nest into paths, metrics aggregate, data
//! recorded on spawned threads merges into one report, and both sinks render
//! the result. A single `#[test]` because everything here shares the
//! process-global collector registry.

#[test]
fn enabled_pipeline_end_to_end() {
    cpgan_obs::set_enabled(true);
    cpgan_obs::reset();

    // Nested spans on the main thread: paths join with `/`.
    {
        let _fit = cpgan_obs::span("fit");
        for _ in 0..3 {
            let _epoch = cpgan_obs::span("epoch");
            cpgan_obs::hist_record("flops", 2048.0);
        }
    }
    cpgan_obs::counter_add("jobs", 2);
    cpgan_obs::counter_add("jobs", 3);
    cpgan_obs::gauge_set("params", 10.0);
    cpgan_obs::gauge_set("params", 20.0); // latest write wins
    cpgan_obs::series_record("loss", 1, 0.25);

    // Worker threads record under a root scope (as pool jobs do) so their
    // span paths are independent of where the closure runs.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                cpgan_obs::with_root_scope(|| {
                    let _job = cpgan_obs::span("job");
                    cpgan_obs::counter_add("jobs", 1);
                    cpgan_obs::hist_record("flops", 2048.0);
                    cpgan_obs::series_record("loss", 1 + i, 0.5);
                });
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    let report = cpgan_obs::snapshot();
    assert_eq!(report.span_stat("fit").map(|(c, _)| c), Some(1));
    assert_eq!(report.span_stat("fit/epoch").map(|(c, _)| c), Some(3));
    assert_eq!(report.span_stat("job").map(|(c, _)| c), Some(4));
    assert_eq!(report.counter("jobs"), Some(2 + 3 + 4));
    assert_eq!(report.gauge("params"), Some(20.0));
    let flops = report.hist("flops").unwrap();
    assert_eq!(flops.count, 7);
    assert_eq!(flops.buckets[11], 7); // 2048 = 2^11
                                      // Series points are concatenated across threads then sorted by
                                      // (step, value), so the merged order is deterministic.
    assert_eq!(
        report.series("loss"),
        Some(&[(1, 0.25), (1, 0.5), (2, 0.5), (3, 0.5), (4, 0.5)][..])
    );

    let jsonl = report.to_jsonl();
    assert!(jsonl.contains("\"path\":\"fit/epoch\",\"count\":3"));
    assert!(jsonl.contains("\"t\":\"counter\",\"name\":\"jobs\",\"value\":9"));
    assert!(jsonl.contains("\"t\":\"hist\",\"name\":\"flops\",\"count\":7"));
    assert!(jsonl.contains("[11,7]"));
    assert!(jsonl.contains("\"t\":\"series\",\"name\":\"loss\""));
    let tree = report.summary_tree();
    assert!(tree.contains("spans:"));
    assert!(tree.contains("epoch"));
    assert!(tree.contains("series:"));

    // with_root_scope restores the caller's stack even on panic-free return.
    {
        let _outer = cpgan_obs::span("outer");
        cpgan_obs::with_root_scope(|| {
            let _rooted = cpgan_obs::span("rooted");
        });
        let _back = cpgan_obs::span("back");
    }
    let report = cpgan_obs::snapshot();
    assert_eq!(report.span_stat("rooted").map(|(c, _)| c), Some(1));
    assert_eq!(report.span_stat("outer/back").map(|(c, _)| c), Some(1));

    // finish() honors CPGAN_OBS_OUT over the default path.
    let dir = std::env::temp_dir().join(format!("cpgan_obs_test_{}", std::process::id()));
    let path = dir.join("obs.jsonl");
    std::env::set_var("CPGAN_OBS_OUT", &path);
    cpgan_obs::finish(Some("ignored-default.jsonl"));
    std::env::remove_var("CPGAN_OBS_OUT");
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("\"path\":\"fit/epoch\""));
    let _ = std::fs::remove_dir_all(&dir);

    // reset() clears data but keeps collecting afterwards.
    cpgan_obs::reset();
    let empty = cpgan_obs::snapshot();
    assert_eq!(empty.counter("jobs"), None);
    cpgan_obs::counter_add("jobs", 1);
    assert_eq!(cpgan_obs::snapshot().counter("jobs"), Some(1));
}
