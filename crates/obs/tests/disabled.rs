//! Disabled-mode contract: with collection off, every instrumentation call
//! is a no-op and the snapshot stays empty. Runs in its own process (one
//! integration-test binary) so the enabled flag is never toggled by other
//! tests.

#[test]
fn disabled_mode_records_nothing() {
    cpgan_obs::set_enabled(false);
    assert!(!cpgan_obs::enabled());

    {
        let _outer = cpgan_obs::span("outer");
        let _inner = cpgan_obs::span("inner");
        cpgan_obs::counter_add("jobs", 3);
        cpgan_obs::gauge_set("params", 42.0);
        cpgan_obs::hist_record("flops", 1024.0);
        cpgan_obs::series_record("loss", 0, 0.5);
    }
    cpgan_obs::with_root_scope(|| {
        let _s = cpgan_obs::span("rooted");
    });

    let report = cpgan_obs::snapshot();
    assert_eq!(report.span_stat("outer"), None);
    assert_eq!(report.span_stat("outer/inner"), None);
    assert_eq!(report.counter("jobs"), None);
    assert_eq!(report.gauge("params"), None);
    assert!(report.hist("flops").is_none());
    assert!(report.series("loss").is_none());

    // The JSONL sink still renders (just the meta line) and finish() with no
    // output path is a silent no-op.
    let jsonl = report.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("\"t\":\"meta\""));
    cpgan_obs::finish(None);

    // The Stopwatch primitive is always on, independent of the flag.
    let sw = cpgan_obs::Stopwatch::start();
    assert!(sw.elapsed_secs() >= 0.0);
}
