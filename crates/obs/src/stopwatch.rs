//! The sanctioned always-on timing primitive.
//!
//! Measurement code outside `cpgan-obs` and `cpgan-bench` (efficiency
//! pipelines, pool queue-wait accounting) must time through [`Stopwatch`]
//! rather than raw `std::time::Instant` — the `ad-hoc-timing` xtask lint
//! enforces this, keeping every timing site discoverable in one place.

use std::time::Instant;

/// A started wall-clock timer. Unlike spans, a stopwatch is always on and
/// never records anything itself; callers read it and decide what to do.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}
