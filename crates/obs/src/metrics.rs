//! Counters, gauges, log-bucket histograms, and scalar series.

use crate::collect::{next_gauge_seq, with_collector};

/// Number of histogram buckets; bucket `i` holds values in `[2^i, 2^(i+1))`
/// (bucket 0 additionally absorbs everything below 1, including negatives).
pub const HIST_BUCKETS: usize = 64;

/// A fixed log-bucket streaming histogram.
///
/// Buckets are powers of two, so the bucket of a value depends only on the
/// value — recording is order-independent and two histograms merge by adding
/// bucket counts, which keeps merged output identical at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Hist {
    /// The bucket index of `v`: `floor(log2(v))` clamped to the table
    /// (values below 1, negative or non-finite-low all land in bucket 0).
    pub fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v < 1.0 {
            return 0;
        }
        let b = v.log2() as usize; // v >= 1 so log2 >= 0; cast truncates
        b.min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Commutative and associative, so the merge
    /// order across per-thread collectors cannot change the result.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Adds `delta` to the counter `name`. By workspace convention a counter
/// whose name ends in `_ns` holds wall-clock nanoseconds and is exempt from
/// the determinism contract; every other counter must be thread-count
/// invariant (DESIGN.md §9).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_collector(|c| *c.counters.entry(name.to_string()).or_insert(0) += delta);
}

/// Sets the gauge `name` to `value` (latest write wins, ordered by a
/// process-global sequence). Set gauges from deterministic contexts only.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let seq = next_gauge_seq();
    with_collector(|c| {
        c.gauges.insert(name.to_string(), (seq, value));
    });
}

/// Records `value` into the histogram `name`.
#[inline]
pub fn hist_record(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_collector(|c| c.hists.entry(name.to_string()).or_default().record(value));
}

/// Appends `(step, value)` to the scalar series `name` (training telemetry:
/// losses, grad norms, modularity-Q per epoch).
#[inline]
pub fn series_record(name: &'static str, step: u64, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_collector(|c| {
        c.series
            .entry(name.to_string())
            .or_default()
            .push((step, value));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(-3.0), 0);
        assert_eq!(Hist::bucket_of(0.0), 0);
        assert_eq!(Hist::bucket_of(0.5), 0);
        assert_eq!(Hist::bucket_of(1.0), 0);
        assert_eq!(Hist::bucket_of(1.99), 0);
        assert_eq!(Hist::bucket_of(2.0), 1);
        assert_eq!(Hist::bucket_of(1024.0), 10);
        assert_eq!(Hist::bucket_of(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Hist::bucket_of(f64::NAN), 0);
    }

    #[test]
    fn merge_matches_serial_reference() {
        // Record a value set split across two histograms in interleaved
        // order; merging must reproduce the single-histogram reference
        // exactly (the per-thread merge discipline in miniature).
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 97) as f64 * 1.37).collect();
        let mut reference = Hist::default();
        for &v in &values {
            reference.record(v);
        }
        let mut a = Hist::default();
        let mut b = Hist::default();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab.buckets, reference.buckets);
        assert_eq!(merged_ab.count, reference.count);
        assert_eq!(merged_ab.min.to_bits(), reference.min.to_bits());
        assert_eq!(merged_ab.max.to_bits(), reference.max.to_bits());
        // Bucket counts and extrema are order-independent both ways.
        assert_eq!(merged_ba.buckets, reference.buckets);
        assert_eq!(merged_ba.count, reference.count);
    }

    #[test]
    fn empty_merge_is_identity() {
        let mut h = Hist::default();
        h.record(5.0);
        let snapshot = h.clone();
        h.merge(&Hist::default());
        assert_eq!(h, snapshot);
    }
}
