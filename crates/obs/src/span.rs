//! Hierarchical span timers: RAII guards over a thread-local name stack.

use crate::collect::with_collector;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The stack of currently open span names on this thread. Joined with
    /// `/` it is the aggregation key of the innermost span.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Dropping it records `(count += 1, total_ns += elapsed)`
/// under the full path of open spans at creation time.
#[must_use = "a span measures the scope it is bound to; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span named `name` under the currently open spans of this thread.
///
/// When collection is disabled this is one relaxed atomic load and a branch;
/// the returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        with_collector(|c| {
            let stat = c.spans.entry(path).or_default();
            stat.count += 1;
            stat.total_ns += elapsed_ns;
        });
    }
}

/// Runs `f` with an empty span stack, restoring the caller's stack after.
///
/// Work that migrates between threads (e.g. `cpgan-parallel` pool jobs) runs
/// under a root scope in **both** its serial-inline and worker-thread
/// executions, so span paths do not depend on the thread count.
pub fn with_root_scope<R>(f: impl FnOnce() -> R) -> R {
    if !crate::enabled() {
        return f();
    }
    struct Restore(Vec<&'static str>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let saved = std::mem::take(&mut self.0);
            STACK.with(|s| *s.borrow_mut() = saved);
        }
    }
    let saved = STACK.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let _restore = Restore(saved);
    f()
}
