//! Merged report: JSONL sink and human-readable summary tree.

use crate::collect::SpanStat;
use crate::metrics::Hist;
use std::collections::BTreeMap;

/// A merged snapshot of everything every thread recorded.
///
/// Produced by [`crate::snapshot`]; all maps are `BTreeMap`s so iteration
/// (and therefore both sinks) is deterministically ordered. Fields whose
/// JSONL key ends in `_ns` hold wall-clock durations and are the only
/// thread-count-dependent values in the report (histogram `sum` stays
/// invariant because recorded samples are integer-valued work sizes, whose
/// f64 additions are exact and hence order-independent below 2^53).
#[derive(Debug, Default)]
pub struct Report {
    pub(crate) spans: BTreeMap<String, SpanStat>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, (u64, f64)>,
    pub(crate) hists: BTreeMap<String, Hist>,
    pub(crate) series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Report {
    /// Canonicalizes order-dependent pieces: each series is stable-sorted by
    /// `(step, value)` so concatenating per-thread segments in any order
    /// yields the same point list.
    pub(crate) fn normalize(&mut self) {
        for points in self.series.values_mut() {
            points.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
        }
    }

    /// Aggregated `(count, total_ns)` of a span path, if recorded.
    pub fn span_stat(&self, path: &str) -> Option<(u64, u64)> {
        self.spans.get(path).map(|s| (s.count, s.total_ns))
    }

    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Latest value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|&(_, v)| v)
    }

    /// A histogram by name, if recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// The points of a scalar series, sorted by `(step, value)`.
    pub fn series(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Renders the report as JSONL: one `meta` line, then one line per span
    /// path, counter, gauge, histogram, and series, each tagged with `"t"`.
    ///
    /// Everything except `_ns`-suffixed fields and the `meta` line is
    /// thread-count invariant; the determinism suite strips exactly those.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let threads = std::env::var("CPGAN_THREADS").unwrap_or_default();
        out.push_str(&format!(
            "{{\"t\":\"meta\",\"cpgan_threads\":{}}}\n",
            json_str(&threads)
        ));
        for (path, s) in &self.spans {
            out.push_str(&format!(
                "{{\"t\":\"span\",\"path\":{},\"count\":{},\"total_ns\":{}}}\n",
                json_str(path),
                s.count,
                s.total_ns
            ));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"t\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                v
            ));
        }
        for (name, &(_, v)) in &self.gauges {
            out.push_str(&format!(
                "{{\"t\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                json_f64(v)
            ));
        }
        for (name, h) in &self.hists {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, c)| format!("[{i},{c}]"))
                .collect();
            out.push_str(&format!(
                "{{\"t\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                json_str(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                buckets.join(",")
            ));
        }
        for (name, points) in &self.series {
            let pts: Vec<String> = points
                .iter()
                .map(|&(step, v)| format!("[{},{}]", step, json_f64(v)))
                .collect();
            out.push_str(&format!(
                "{{\"t\":\"series\",\"name\":{},\"points\":[{}]}}\n",
                json_str(name),
                pts.join(",")
            ));
        }
        out
    }

    /// Renders the report as one JSON object —
    /// `{"spans":{...},"counters":{...},"gauges":{...},"hists":{...},
    /// "series":{...}}` — for machine consumers that want a single
    /// document rather than the JSONL stream (e.g. the serving layer's
    /// `GET /metrics` endpoint). Key order is the `BTreeMap` order, so
    /// the rendering is deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json_str(path),
                s.count,
                s.total_ns
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, &(_, v))) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), json_f64(v)));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(b, c)| format!("[{b},{c}]"))
                .collect();
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json_str(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                buckets.join(",")
            ));
        }
        out.push_str("},\"series\":{");
        for (i, (name, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let pts: Vec<String> = points
                .iter()
                .map(|&(step, v)| format!("[{step},{}]", json_f64(v)))
                .collect();
            out.push_str(&format!("{}:[{}]", json_str(name), pts.join(",")));
        }
        out.push_str("}}");
        out
    }

    /// Renders a deterministic human-readable summary: spans as an indented
    /// tree (durations included — those vary run to run, the structure does
    /// not), then counters, gauges, histograms, and series extents.
    pub fn summary_tree(&self) -> String {
        let mut out = String::from("== cpgan-obs summary ==\n");
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (path, s) in &self.spans {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let label = format!("{}{}", "  ".repeat(depth + 1), leaf);
                out.push_str(&format!(
                    "{label:<40} count={:<8} total={}\n",
                    s.count,
                    fmt_dur(s.total_ns)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                if name.ends_with("_ns") {
                    out.push_str(&format!("  {name:<38} {}\n", fmt_dur(*v)));
                } else {
                    out.push_str(&format!("  {name:<38} {v}\n"));
                }
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, &(_, v)) in &self.gauges {
                out.push_str(&format!("  {name:<38} {v}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "  {name:<38} count={} min={} max={} mean={}\n",
                    h.count,
                    h.min,
                    h.max,
                    if h.count > 0 {
                        h.sum / h.count as f64
                    } else {
                        0.0
                    }
                ));
            }
        }
        if !self.series.is_empty() {
            out.push_str("series:\n");
            for (name, points) in &self.series {
                let last = points.last().map(|&(s, v)| format!("last=({s}, {v})"));
                out.push_str(&format!(
                    "  {name:<38} points={} {}\n",
                    points.len(),
                    last.unwrap_or_default()
                ));
            }
        }
        out
    }
}

/// Flushes observability at program exit: when collection is enabled, merges
/// all collectors, writes the JSONL report to `CPGAN_OBS_OUT` (falling back
/// to `default_out`), and prints the summary tree to stderr. A no-op when
/// collection is disabled; sink I/O errors are reported to stderr, never
/// panicked on.
pub fn finish(default_out: Option<&str>) {
    if !crate::enabled() {
        return;
    }
    let report = crate::snapshot();
    let env_out = std::env::var("CPGAN_OBS_OUT").ok();
    let out_path = env_out.as_deref().or(default_out);
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cpgan-obs: cannot create {}: {e}", parent.display());
                }
            }
        }
        match std::fs::write(path, report.to_jsonl()) {
            Ok(()) => eprintln!("cpgan-obs: wrote {path}"),
            Err(e) => eprintln!("cpgan-obs: cannot write {path}: {e}"),
        }
    }
    eprint!("{}", report.summary_tree());
}

/// JSON string literal (quotes + escapes) for a key/name.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Canonical JSON rendering of an f64 (shortest round-trip form; non-finite
/// values become `null` since JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Human-readable duration from nanoseconds.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn normalize_sorts_series_points() {
        let mut r = Report::default();
        r.series.insert(
            "loss".to_string(),
            vec![(2, 0.5), (0, 1.0), (1, 0.7), (1, 0.2)],
        );
        r.normalize();
        assert_eq!(
            r.series("loss"),
            Some(&[(0, 1.0), (1, 0.2), (1, 0.7), (2, 0.5)][..])
        );
    }

    #[test]
    fn jsonl_shape_and_tree() {
        let mut r = Report::default();
        r.spans.insert(
            "a/b".to_string(),
            crate::collect::SpanStat {
                count: 3,
                total_ns: 1500,
            },
        );
        r.counters.insert("jobs".to_string(), 7);
        let jsonl = r.to_jsonl();
        assert!(jsonl.contains("\"t\":\"meta\""));
        assert!(jsonl.contains("{\"t\":\"span\",\"path\":\"a/b\",\"count\":3,\"total_ns\":1500}"));
        assert!(jsonl.contains("{\"t\":\"counter\",\"name\":\"jobs\",\"value\":7}"));
        let tree = r.summary_tree();
        assert!(tree.contains("spans:"));
        assert!(tree.contains("b"));
        assert!(tree.contains("jobs"));
    }

    #[test]
    fn json_object_shape() {
        let mut r = Report::default();
        r.spans.insert(
            "a/b".to_string(),
            crate::collect::SpanStat {
                count: 3,
                total_ns: 1500,
            },
        );
        r.counters.insert("jobs".to_string(), 7);
        r.gauges.insert("depth".to_string(), (1, 2.5));
        let mut h = Hist::default();
        h.record(4.0);
        r.hists.insert("lat".to_string(), h);
        r.series.insert("loss".to_string(), vec![(0, 1.0)]);
        let json = r.to_json();
        assert!(json.starts_with("{\"spans\":{"), "{json}");
        assert!(
            json.contains("\"a/b\":{\"count\":3,\"total_ns\":1500}"),
            "{json}"
        );
        assert!(json.contains("\"counters\":{\"jobs\":7}"), "{json}");
        assert!(json.contains("\"gauges\":{\"depth\":2.5}"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1,"), "{json}");
        assert!(json.contains("\"series\":{\"loss\":[[0,1]]}"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
        // An empty report is still a complete, parseable object.
        let empty = Report::default().to_json();
        assert_eq!(
            empty,
            "{\"spans\":{},\"counters\":{},\"gauges\":{},\"hists\":{},\"series\":{}}"
        );
    }
}
