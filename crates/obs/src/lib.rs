#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Zero-overhead observability for the CPGAN workspace.
//!
//! `cpgan-obs` is a self-contained, dependency-free instrumentation layer
//! (see DESIGN.md §9) with four ingredients:
//!
//! * **hierarchical span timers** — [`span`] returns an RAII guard; nested
//!   guards form a path (`core.fit/core.epoch/nn.backward`) aggregated by
//!   call count and total wall-clock,
//! * **metrics** — [`counter_add`] / [`gauge_set`] and fixed log-bucket
//!   streaming histograms ([`hist_record`]),
//! * **training telemetry** — [`series_record`] appends `(step, value)`
//!   points to named scalar series (losses, grad norms, modularity-Q per
//!   epoch),
//! * **two sinks** — a JSONL event/series log ([`Report::to_jsonl`]) and a
//!   deterministic human-readable summary tree ([`Report::summary_tree`]).
//!
//! # Disabled-mode cost contract
//!
//! Collection is **off by default**. Every instrumentation call starts with
//! [`enabled`] — a single relaxed atomic load plus a branch — and returns
//! immediately when observability is off, so instrumented hot paths cost a
//! few cycles per call (`results/BENCH_obs_overhead.json` pins the bound).
//! Setting `CPGAN_OBS=1` (or calling [`set_enabled`], e.g. from the CLI's
//! `--obs-out` flag) turns collection on.
//!
//! # Determinism contract
//!
//! Collection is per-thread (each thread owns a collector registered in a
//! global index-ordered registry, the same discipline as `cpgan-parallel`)
//! and merged in index order at snapshot time with commutative combines, so
//! the report is identical at any `CPGAN_THREADS` setting **except for
//! wall-clock durations**. By convention every duration-valued key ends in
//! `_ns`; everything else (span paths and counts, counters, gauges,
//! histogram contents, series values) must be thread-count invariant. The
//! workspace determinism suite (`tests/obs_determinism.rs`) strips `_ns`
//! fields and asserts bit-identical JSONL at `CPGAN_THREADS={1,2,4}`.

mod collect;
mod metrics;
mod report;
mod span;
mod stopwatch;

pub use metrics::{counter_add, gauge_set, hist_record, series_record, Hist, HIST_BUCKETS};
pub use report::{finish, Report};
pub use span::{span, with_root_scope, SpanGuard};
pub use stopwatch::Stopwatch;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state enabled flag: 0 = unresolved, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether collection is on. One relaxed load and a branch after the first
/// call — this is the entire disabled-mode cost of every instrumentation
/// point.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve_enabled(),
    }
}

/// First-call resolution from the `CPGAN_OBS` environment variable (set and
/// not `0`/empty = on).
#[cold]
fn resolve_enabled() -> bool {
    let on = std::env::var("CPGAN_OBS")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns collection on or off programmatically (wins over `CPGAN_OBS`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Merges every thread's collector (in registration-index order) into a
/// [`Report`] without clearing anything.
pub fn snapshot() -> Report {
    collect::merged()
}

/// Clears all collected data in every registered collector (the collectors
/// themselves stay registered). Used between determinism-suite runs.
pub fn reset() {
    collect::reset()
}
