//! Per-thread collectors and the index-ordered global registry.
//!
//! Every thread that records anything owns one [`Collector`] behind an
//! `Arc<Mutex<..>>`; the arc is registered once in a process-global vector
//! in first-touch order. Recording locks only the calling thread's own
//! mutex (uncontended in steady state); snapshotting walks the registry in
//! index order and folds each collector in with commutative combines, so
//! the merged result does not depend on registration order or thread count.

use crate::metrics::Hist;
use crate::report::Report;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanStat {
    /// Number of completed guard drops.
    pub count: u64,
    /// Total wall-clock across those drops, nanoseconds.
    pub total_ns: u64,
}

/// One thread's private store of everything it recorded.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    /// Span path (`a/b/c`) -> aggregated stat.
    pub spans: BTreeMap<String, SpanStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges as `(write sequence, value)`; the merge keeps the latest write.
    pub gauges: BTreeMap<String, (u64, f64)>,
    /// Log-bucket streaming histograms.
    pub hists: BTreeMap<String, Hist>,
    /// Scalar series as `(step, value)` points in record order.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Collector {
    fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
        self.series.clear();
    }
}

type Shared = Arc<Mutex<Collector>>;

fn registry() -> &'static Mutex<Vec<Shared>> {
    static REGISTRY: OnceLock<Mutex<Vec<Shared>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Locks a mutex, recovering the data on poison (a panicking recorder must
/// not take observability down with it).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// This thread's collector handle, registered globally on first use.
    static LOCAL: OnceCell<Shared> = const { OnceCell::new() };
}

/// Runs `f` against the calling thread's collector.
pub(crate) fn with_collector(f: impl FnOnce(&mut Collector)) {
    LOCAL.with(|cell| {
        let shared = cell.get_or_init(|| {
            let shared: Shared = Arc::new(Mutex::new(Collector::default()));
            lock(registry()).push(Arc::clone(&shared));
            shared
        });
        f(&mut lock(shared));
    });
}

/// Next gauge write sequence number (process-global, so "latest write wins"
/// is well defined across threads).
pub(crate) fn next_gauge_seq() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Merges every registered collector, in registration-index order, into one
/// [`Report`]. All combines are commutative (integer adds, bucket adds,
/// latest-sequence gauge writes) except series concatenation, which is made
/// order-independent by the stable `(step, value-bits)` sort in
/// [`Report::normalize`].
pub(crate) fn merged() -> Report {
    let handles: Vec<Shared> = lock(registry()).clone();
    let mut report = Report::default();
    for shared in &handles {
        let c = lock(shared);
        for (path, stat) in &c.spans {
            let e = report.spans.entry(path.clone()).or_default();
            e.count += stat.count;
            e.total_ns += stat.total_ns;
        }
        for (name, v) in &c.counters {
            *report.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &(seq, v)) in &c.gauges {
            let e = report.gauges.entry(name.clone()).or_insert((seq, v));
            if seq >= e.0 {
                *e = (seq, v);
            }
        }
        for (name, h) in &c.hists {
            report.hists.entry(name.clone()).or_default().merge(h);
        }
        for (name, points) in &c.series {
            report
                .series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(points);
        }
    }
    report.normalize();
    report
}

/// Clears every registered collector in place.
pub(crate) fn reset() {
    let handles: Vec<Shared> = lock(registry()).clone();
    for shared in &handles {
        lock(shared).clear();
    }
}
