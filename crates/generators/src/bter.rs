//! Block Two-level Erdős–Rényi model (paper baseline "BTER",
//! Kolda, Pinar, Plantenga & Comandur 2014).
//!
//! BTER models a graph as (phase 1) a collection of dense ER "affinity
//! blocks" of similar-degree nodes, correcting the clustering coefficient,
//! plus (phase 2) a Chung–Lu pass over the *excess* degrees, correcting the
//! degree distribution. The paper finds BTER the strongest traditional
//! baseline; reproducing that ranking requires a faithful implementation.

use crate::chung_lu::ChungLu;
use crate::GraphGenerator;
use cpgan_graph::{stats, Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

#[derive(Debug, Clone)]
struct Block {
    members: Vec<NodeId>,
    density: f64,
}

/// A fitted BTER model.
#[derive(Debug, Clone)]
pub struct Bter {
    n: usize,
    blocks: Vec<Block>,
    /// Phase-2 Chung–Lu weights (excess degrees).
    excess: Vec<f64>,
}

impl Bter {
    /// Fits affinity blocks and excess degrees from the observed graph.
    pub fn fit(g: &Graph) -> Self {
        let n = g.n();
        let degrees = g.degrees();
        let local_cc = stats::clustering::local_clustering(g);

        // Mean clustering per degree (for block densities).
        let max_deg = degrees.iter().copied().max().unwrap_or(0);
        let mut cc_sum = vec![0.0f64; max_deg + 1];
        let mut cc_cnt = vec![0usize; max_deg + 1];
        for v in 0..n {
            cc_sum[degrees[v]] += local_cc[v];
            cc_cnt[degrees[v]] += 1;
        }
        let cc_of = |d: usize| -> f64 {
            if cc_cnt[d] > 0 {
                cc_sum[d] / cc_cnt[d] as f64
            } else {
                0.0
            }
        };

        // Sort nodes (degree >= 2) ascending by degree and chunk them into
        // affinity blocks of size d_min + 1.
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| degrees[v as usize] >= 2)
            .collect();
        order.sort_by_key(|&v| degrees[v as usize]);

        let mut blocks = Vec::new();
        let mut excess: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
        let mut i = 0usize;
        while i < order.len() {
            let d_min = degrees[order[i] as usize];
            let size = (d_min + 1).min(order.len() - i);
            if size < 2 {
                break;
            }
            let members: Vec<NodeId> = order[i..i + size].to_vec();
            // Block density: BTER picks rho so expected within-block
            // clustering matches the observed mean clustering at d_min:
            // cc(ER(p)) = p, triangles-wise cc ~= rho, and the original
            // paper uses rho = cc^{1/3}.
            let density = cc_of(d_min).powf(1.0 / 3.0).clamp(0.0, 1.0);
            // Expected within-block degree consumed by phase 1.
            let within = density * (size as f64 - 1.0);
            for &v in &members {
                excess[v as usize] = (degrees[v as usize] as f64 - within).max(0.0);
            }
            blocks.push(Block { members, density });
            i += size;
        }

        Bter { n, blocks, excess }
    }

    /// Number of affinity blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl GraphGenerator for Bter {
    fn name(&self) -> &'static str {
        "BTER"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        // Phase 1: dense ER inside each affinity block.
        for block in &self.blocks {
            let k = block.members.len();
            if k < 2 || block.density <= 0.0 {
                continue;
            }
            for a in 0..k {
                for c in (a + 1)..k {
                    if rng.gen::<f64>() < block.density {
                        b.push_edge(block.members[a], block.members[c]);
                    }
                }
            }
        }
        // Phase 2: Chung-Lu on the excess degrees.
        let cl = ChungLu::from_degrees(self.excess.clone());
        let phase2 = cl.generate(rng);
        for &(u, v) in phase2.edges() {
            b.push_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A clustered graph: many triangles plus hubs.
    fn clustered_graph() -> Graph {
        let mut edges = Vec::new();
        // 20 triangles sharing a hub chain.
        for t in 0..20u32 {
            let base = t * 3;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
            if t > 0 {
                edges.push((base, base - 3));
            }
        }
        Graph::from_edges(60, edges).unwrap()
    }

    #[test]
    fn preserves_edge_count_roughly() {
        let g = clustered_graph();
        let model = Bter::fit(&g);
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0usize;
        for _ in 0..10 {
            total += model.generate(&mut rng).m();
        }
        let avg = total as f64 / 10.0;
        assert!(
            (avg - g.m() as f64).abs() < 0.4 * g.m() as f64,
            "avg {avg} vs {}",
            g.m()
        );
    }

    #[test]
    fn preserves_clustering_better_than_er() {
        let g = clustered_graph();
        let target = stats::clustering::mean_clustering(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let bter = Bter::fit(&g);
        let er = crate::er::ErdosRenyi::fit(&g);
        let mut bter_err = 0.0;
        let mut er_err = 0.0;
        for _ in 0..10 {
            bter_err +=
                (stats::clustering::mean_clustering(&bter.generate(&mut rng)) - target).abs();
            er_err += (stats::clustering::mean_clustering(&er.generate(&mut rng)) - target).abs();
        }
        assert!(bter_err < er_err, "bter {bter_err} vs er {er_err}");
    }

    #[test]
    fn blocks_formed() {
        let g = clustered_graph();
        let model = Bter::fit(&g);
        assert!(model.block_count() > 0);
    }

    #[test]
    fn handles_star_graph() {
        // Star: leaves have degree 1 (no blocks), hub carries all excess.
        let g = Graph::from_edges(10, (1..10u32).map(|v| (0, v))).unwrap();
        let model = Bter::fit(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), 10);
    }
}
