//! Stochastic Kronecker graphs (paper baseline "Kronecker",
//! Leskovec et al. 2010), generated R-MAT style.

use crate::GraphGenerator;
use cpgan_graph::{stats, Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// A fitted 2x2-initiator Kronecker model.
///
/// Full KronFit is a maximum-likelihood search over permutations; the paper
/// uses it only as a scalable baseline, so we fit the initiator with the
/// standard moment heuristic: the skew parameter `a` tracks the observed
/// degree inequality (Gini), and the initiator is scaled so the expected
/// edge count after `k = ceil(log2 n)` Kronecker powers matches `m`.
#[derive(Debug, Clone)]
pub struct Kronecker {
    n: usize,
    m: usize,
    k: u32,
    /// Quadrant probabilities (a, b, b, c), normalized to sum 1 for R-MAT
    /// descent.
    quadrants: [f64; 4],
}

impl Kronecker {
    /// Fits the initiator from the observed graph.
    pub fn fit(g: &Graph) -> Self {
        let gini = stats::gini::gini_coefficient(&g.degrees());
        Self::with_skew(g.n(), g.m(), gini)
    }

    /// Builds a model with an explicit skew in `[0, 1]` (0 = uniform R-MAT,
    /// 1 = maximally skewed).
    pub fn with_skew(n: usize, m: usize, skew: f64) -> Self {
        // Map inequality to quadrant skew: a in [0.25, 0.75].
        let a = (0.25 + 0.5 * skew.clamp(0.0, 1.0)).min(0.75);
        let rest = 1.0 - a;
        let b = rest * 0.35;
        let c = rest - 2.0 * b;
        let k = (n.max(2) as f64).log2().ceil() as u32;
        Kronecker {
            n,
            m,
            k,
            quadrants: [a, b, b, c.max(0.01)],
        }
    }

    /// The quadrant probabilities after normalization.
    pub fn quadrants(&self) -> [f64; 4] {
        self.quadrants
    }
}

impl GraphGenerator for Kronecker {
    fn name(&self) -> &'static str {
        "Kronecker"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.n, self.m);
        if self.n < 2 || self.m == 0 {
            return b.build();
        }
        let total: f64 = self.quadrants.iter().sum();
        let q: Vec<f64> = self.quadrants.iter().map(|v| v / total).collect();
        let mut seen = std::collections::HashSet::with_capacity(self.m * 2);
        let mut placed = 0usize;
        let mut guard = 0usize;
        let limit = 40 * self.m + 1000;
        while placed < self.m && guard < limit {
            guard += 1;
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..self.k {
                let r = rng.gen::<f64>();
                let quad = if r < q[0] {
                    0
                } else if r < q[0] + q[1] {
                    1
                } else if r < q[0] + q[1] + q[2] {
                    2
                } else {
                    3
                };
                u = 2 * u + (quad >> 1);
                v = 2 * v + (quad & 1);
            }
            if u >= self.n || v >= self.n || u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.push_edge(key.0 as NodeId, key.1 as NodeId);
                placed += 1;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_respected() {
        let model = Kronecker::with_skew(300, 900, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let g = model.generate(&mut rng);
        assert_eq!(g.n(), 300);
        assert!(g.m() >= 850, "placed {}", g.m());
    }

    #[test]
    fn higher_skew_more_inequality() {
        let mut rng = StdRng::seed_from_u64(1);
        let gini_at = |skew: f64, rng: &mut StdRng| {
            let model = Kronecker::with_skew(512, 2048, skew);
            let mut acc = 0.0;
            for _ in 0..5 {
                acc += stats::gini::gini_coefficient(&model.generate(rng).degrees());
            }
            acc / 5.0
        };
        let low = gini_at(0.0, &mut rng);
        let high = gini_at(1.0, &mut rng);
        assert!(high > low + 0.05, "low {low} high {high}");
    }

    #[test]
    fn fit_tracks_observed_inequality() {
        let mut rng = StdRng::seed_from_u64(2);
        let hubby = crate::ba::BarabasiAlbert::new(256, 3).generate(&mut rng);
        let model = Kronecker::fit(&hubby);
        // Skewed input should push `a` above the uniform 0.25.
        assert!(model.quadrants()[0] > 0.3);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Kronecker::with_skew(1, 10, 0.5).generate(&mut rng).m(), 0);
        assert_eq!(Kronecker::with_skew(10, 0, 0.5).generate(&mut rng).m(), 0);
    }
}
