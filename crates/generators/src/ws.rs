//! Watts–Strogatz small-world graphs (paper reference \[9\]), included for
//! completeness of the traditional-generator family.

use crate::GraphGenerator;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// The Watts–Strogatz model: a ring lattice where every node connects to its
/// `k` nearest neighbors, with each edge rewired to a random endpoint with
/// probability `beta`.
#[derive(Debug, Clone)]
pub struct WattsStrogatz {
    n: usize,
    k: usize,
    beta: f64,
}

impl WattsStrogatz {
    /// Fits `k` from the observed mean degree and `beta` from the observed
    /// clustering relative to the lattice optimum (`beta ~ (1 - C/C_lattice)^(1/3)`).
    pub fn fit(g: &Graph) -> Self {
        let k = ((g.mean_degree() / 2.0).round() as usize).max(1) * 2;
        let c = cpgan_graph::stats::clustering::mean_clustering(g);
        let c_lattice = if k > 2 {
            3.0 * (k as f64 - 2.0) / (4.0 * (k as f64 - 1.0))
        } else {
            0.0
        };
        let beta = if c_lattice > 0.0 {
            (1.0 - (c / c_lattice).clamp(0.0, 1.0)).powf(1.0 / 3.0)
        } else {
            0.5
        };
        WattsStrogatz { n: g.n(), k, beta }
    }

    /// Builds the model directly (`k` is rounded up to even).
    pub fn new(n: usize, k: usize, beta: f64) -> Self {
        WattsStrogatz {
            n,
            k: (k + k % 2).max(2),
            beta: beta.clamp(0.0, 1.0),
        }
    }

    /// The rewiring probability.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl GraphGenerator for WattsStrogatz {
    fn name(&self) -> &'static str {
        "W-S"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.n;
        if n < 3 {
            return GraphBuilder::new(n).build();
        }
        let half = (self.k / 2).min(n / 2 - 1).max(1);
        let mut b = GraphBuilder::with_capacity(n, n * half);
        for v in 0..n {
            for d in 1..=half {
                let u = v as NodeId;
                let w = ((v + d) % n) as NodeId;
                if rng.gen::<f64>() < self.beta {
                    // Rewire to a uniform random endpoint.
                    let r = rng.gen_range(0..n) as NodeId;
                    if r != u {
                        b.push_edge(u, r);
                        continue;
                    }
                }
                b.push_edge(u, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_graph::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lattice_when_beta_zero() {
        let model = WattsStrogatz::new(20, 4, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let g = model.generate(&mut rng);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        // Ring lattice with k=4: every node has degree 4.
        assert!(g.degrees().iter().all(|&d| d == 4));
        // High clustering is the small-world signature.
        assert!(stats::clustering::mean_clustering(&g) > 0.4);
    }

    #[test]
    fn rewiring_shortens_paths() {
        let mut rng = StdRng::seed_from_u64(1);
        let lattice = WattsStrogatz::new(200, 6, 0.0).generate(&mut rng);
        let small_world = WattsStrogatz::new(200, 6, 0.2).generate(&mut rng);
        let cpl_lat = stats::path::characteristic_path_length(&lattice, 50);
        let cpl_sw = stats::path::characteristic_path_length(&small_world, 50);
        assert!(
            cpl_sw < cpl_lat,
            "rewiring must shorten paths: {cpl_sw} vs {cpl_lat}"
        );
    }

    #[test]
    fn fit_tracks_mean_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = WattsStrogatz::new(100, 6, 0.1).generate(&mut rng);
        let model = WattsStrogatz::fit(&base);
        let out = model.generate(&mut rng);
        assert!((out.mean_degree() - base.mean_degree()).abs() < 1.5);
    }

    #[test]
    fn beta_one_destroys_clustering() {
        let mut rng = StdRng::seed_from_u64(3);
        let ordered = WattsStrogatz::new(300, 6, 0.0).generate(&mut rng);
        let random = WattsStrogatz::new(300, 6, 1.0).generate(&mut rng);
        assert!(
            stats::clustering::mean_clustering(&random)
                < stats::clustering::mean_clustering(&ordered) / 2.0
        );
    }
}
