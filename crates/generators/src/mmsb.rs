//! Mixed-membership stochastic blockmodel (paper baseline "MMSB",
//! Airoldi et al. 2008).
//!
//! Every node carries a membership distribution over communities; each
//! potential edge draws a community for both endpoints and connects with the
//! corresponding block probability. Generation is inherently `O(n^2 k)` —
//! which is exactly why MMSB rows show "OOM" on the paper's larger datasets;
//! the evaluation harness reproduces that via the memory/size budget.

use crate::GraphGenerator;
use cpgan_community::louvain;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// A fitted MMSB.
#[derive(Debug, Clone)]
pub struct Mmsb {
    /// Per-node membership distributions (`n x k`, rows sum to 1).
    memberships: Vec<Vec<f64>>,
    /// Per-node cumulative membership sums (for O(log k) sampling; the
    /// generation loop is O(n^2) pair draws, so the inner draw must be
    /// sub-linear in k).
    membership_cdf: Vec<Vec<f64>>,
    /// Block connectivity matrix (`k x k`, symmetric).
    block_p: Vec<Vec<f64>>,
}

impl Mmsb {
    /// Fits memberships from a Louvain partition, smoothed with symmetric
    /// Dirichlet-style mass `alpha` spread over other communities, and block
    /// probabilities from the SBM maximum likelihood.
    pub fn fit(g: &Graph, seed: u64, alpha: f64) -> Self {
        let part = louvain::louvain(g, seed);
        Self::fit_with_labels_alpha(g, part.labels(), alpha)
    }

    /// Fits with the block count capped at `max_blocks` (see
    /// [`crate::sbm::Sbm::fit_capped`]).
    pub fn fit_capped(g: &Graph, seed: u64, alpha: f64, max_blocks: usize) -> Self {
        let part = louvain::louvain(g, seed);
        let capped = crate::sbm::cap_labels(part.labels(), max_blocks);
        Self::fit_with_labels_alpha(g, &capped, alpha)
    }

    fn fit_with_labels_alpha(g: &Graph, labels: &[usize], alpha: f64) -> Self {
        let k = labels.iter().copied().max().map_or(1, |m| m + 1);
        let sbm = crate::sbm::Sbm::fit_with_labels(g, labels);
        let mut block_p = vec![vec![0.0f64; k]; k];
        for (r, row) in block_p.iter_mut().enumerate() {
            for (s, cell) in row.iter_mut().enumerate() {
                *cell = sbm.block_probability(r, s);
            }
        }
        let memberships: Vec<Vec<f64>> = labels
            .iter()
            .map(|&l| {
                let mut pi = vec![alpha / k as f64; k];
                pi[l] += 1.0 - alpha;
                pi
            })
            .collect();
        let membership_cdf = memberships
            .iter()
            .map(|pi| {
                let mut acc = 0.0;
                pi.iter()
                    .map(|p| {
                        acc += p;
                        acc
                    })
                    .collect()
            })
            .collect();
        Mmsb {
            memberships,
            membership_cdf,
            block_p,
        }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.block_p.len()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.memberships.len()
    }

    fn sample_community(&self, rng: &mut dyn RngCore, node: usize) -> usize {
        let cdf = &self.membership_cdf[node];
        let x = rng.gen::<f64>();
        cdf.partition_point(|&p| p <= x).min(cdf.len() - 1)
    }
}

impl GraphGenerator for Mmsb {
    fn name(&self) -> &'static str {
        "MMSB"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.n();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let zu = self.sample_community(rng, u);
                let zv = self.sample_community(rng, v);
                if rng.gen::<f64>() < self.block_p[zu][zv] {
                    b.push_edge(u as NodeId, v as NodeId);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques() -> (Graph, Vec<usize>) {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push((u, v));
                edges.push((u + 10, v + 10));
            }
        }
        edges.push((0, 10));
        let labels = (0..20).map(|v| (v >= 10) as usize).collect();
        (Graph::from_edges(20, edges).unwrap(), labels)
    }

    #[test]
    fn fit_finds_communities() {
        let (g, _) = two_cliques();
        let model = Mmsb::fit(&g, 0, 0.1);
        assert_eq!(model.n(), 20);
        assert!(model.community_count() >= 2);
    }

    #[test]
    fn memberships_are_distributions() {
        let (g, _) = two_cliques();
        let model = Mmsb::fit(&g, 0, 0.2);
        for pi in &model.memberships {
            let s: f64 = pi.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(pi.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn generation_preserves_blocks_roughly() {
        let (g, labels) = two_cliques();
        let model = Mmsb::fit(&g, 0, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&mut rng);
        let detected = louvain::louvain(&out, 0);
        let nmi = metrics::nmi(detected.labels(), &labels);
        assert!(nmi > 0.5, "nmi {nmi}");
    }

    #[test]
    fn more_mixing_with_higher_alpha() {
        let (g, _) = two_cliques();
        let mut rng = StdRng::seed_from_u64(2);
        let crisp = Mmsb::fit(&g, 0, 0.01);
        let fuzzy = Mmsb::fit(&g, 0, 0.8);
        // Count cross-community edges (nodes 0..10 vs 10..20).
        let cross = |m: &Mmsb, rng: &mut StdRng| -> usize {
            let mut total = 0;
            for _ in 0..5 {
                let out = m.generate(rng);
                total += out
                    .edges()
                    .iter()
                    .filter(|&&(u, v)| (u < 10) != (v < 10))
                    .count();
            }
            total
        };
        assert!(cross(&fuzzy, &mut rng) > cross(&crisp, &mut rng));
    }
}
