//! Degree-corrected stochastic block model (paper baseline "DCSBM",
//! Karrer & Newman 2011).

use crate::GraphGenerator;
use cpgan_community::louvain;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};
use rand_distr::{Distribution, Poisson};

/// A fitted DCSBM: block-pair edge counts plus per-node degree propensities
/// within each block. Unlike plain SBM, hubs stay hubs inside their
/// community.
#[derive(Debug, Clone)]
pub struct Dcsbm {
    labels: Vec<usize>,
    blocks: Vec<Vec<NodeId>>,
    /// Expected edge count per block pair (`r <= s`).
    block_edges: Vec<Vec<f64>>,
    /// Cumulative degree-proportional sampler per block: (prefix sums, members).
    samplers: Vec<BlockSampler>,
}

#[derive(Debug, Clone)]
struct BlockSampler {
    members: Vec<NodeId>,
    prefix: Vec<f64>,
    total: f64,
}

impl BlockSampler {
    fn new(members: Vec<NodeId>, degrees: &[usize]) -> Self {
        let mut prefix = Vec::with_capacity(members.len());
        let mut total = 0.0;
        for &v in &members {
            total += degrees[v as usize] as f64;
            prefix.push(total);
        }
        BlockSampler {
            members,
            prefix,
            total,
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<NodeId> {
        if self.total <= 0.0 {
            if self.members.is_empty() {
                return None;
            }
            return Some(self.members[rng.gen_range(0..self.members.len())]);
        }
        let x = rng.gen::<f64>() * self.total;
        let i = self.prefix.partition_point(|&p| p <= x);
        Some(self.members[i.min(self.members.len() - 1)])
    }
}

impl Dcsbm {
    /// Fits using Louvain for the partition.
    pub fn fit(g: &Graph, seed: u64) -> Self {
        let part = louvain::louvain(g, seed);
        Self::fit_with_labels(g, part.labels())
    }

    /// Fits with the block count capped at `max_blocks` (see
    /// [`crate::sbm::Sbm::fit_capped`]).
    pub fn fit_capped(g: &Graph, seed: u64, max_blocks: usize) -> Self {
        let part = louvain::louvain(g, seed);
        let capped = crate::sbm::cap_labels(part.labels(), max_blocks);
        Self::fit_with_labels(g, &capped)
    }

    /// Fits with a given partition.
    pub fn fit_with_labels(g: &Graph, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), g.n());
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut blocks = vec![Vec::new(); k];
        for (v, &l) in labels.iter().enumerate() {
            blocks[l].push(v as NodeId);
        }
        let mut block_edges = vec![vec![0.0f64; k]; k];
        for &(u, v) in g.edges() {
            let (r, s) = (labels[u as usize], labels[v as usize]);
            let (r, s) = if r <= s { (r, s) } else { (s, r) };
            block_edges[r][s] += 1.0;
        }
        let degrees = g.degrees();
        let samplers = blocks
            .iter()
            .map(|members| BlockSampler::new(members.clone(), &degrees))
            .collect();
        Dcsbm {
            labels: labels.to_vec(),
            blocks,
            block_edges,
            samplers,
        }
    }

    /// The fitted partition labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

impl GraphGenerator for Dcsbm {
    fn name(&self) -> &'static str {
        "DCSBM"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.labels.len();
        let mut b = GraphBuilder::new(n);
        let k = self.blocks.len();
        for r in 0..k {
            for s in r..k {
                let mean = self.block_edges[r][s];
                if mean <= 0.0 {
                    continue;
                }
                // Poisson edge counts per block pair (the DCSBM likelihood's
                // natural sampling scheme).
                // `mean > 0` here, so construction only fails on a
                // non-finite mean — skip such degenerate blocks.
                let Ok(dist) = Poisson::new(mean) else {
                    continue;
                };
                let count = dist.sample(rng) as u64;
                let mut placed = 0u64;
                let mut guard = 0u64;
                while placed < count && guard < 20 * count + 100 {
                    guard += 1;
                    let (Some(u), Some(v)) =
                        (self.samplers[r].sample(rng), self.samplers[s].sample(rng))
                    else {
                        break;
                    };
                    if u == v {
                        continue;
                    }
                    b.push_edge(u, v);
                    placed += 1;
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::metrics;
    use cpgan_graph::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two communities with internal hubs.
    fn hubby_two_blocks() -> (Graph, Vec<usize>) {
        let mut edges = Vec::new();
        // Community 0: star around node 0 plus a sparse ring.
        for v in 1..20u32 {
            edges.push((0, v));
        }
        for v in 1..19u32 {
            edges.push((v, v + 1));
        }
        // Community 1: star around node 20.
        for v in 21..40u32 {
            edges.push((20, v));
        }
        for v in 21..39u32 {
            edges.push((v, v + 1));
        }
        edges.push((0, 20));
        let labels = (0..40).map(|v| (v >= 20) as usize).collect();
        (Graph::from_edges(40, edges).unwrap(), labels)
    }

    #[test]
    fn edge_count_preserved_in_expectation() {
        let (g, labels) = hubby_two_blocks();
        let model = Dcsbm::fit_with_labels(&g, &labels);
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0usize;
        for _ in 0..20 {
            total += model.generate(&mut rng).m();
        }
        let avg = total as f64 / 20.0;
        // Rejected duplicates bias slightly low; allow a generous band.
        assert!(
            (avg - g.m() as f64).abs() < 0.25 * g.m() as f64,
            "avg {avg}"
        );
    }

    #[test]
    fn hubs_stay_hubs() {
        let (g, labels) = hubby_two_blocks();
        let model = Dcsbm::fit_with_labels(&g, &labels);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hub_deg = 0usize;
        let reps = 10;
        for _ in 0..reps {
            let out = model.generate(&mut rng);
            hub_deg += out.degree(0);
        }
        let avg_hub = hub_deg as f64 / reps as f64;
        let (og, _) = hubby_two_blocks();
        assert!(
            avg_hub > 0.5 * og.degree(0) as f64,
            "hub degree collapsed: {avg_hub}"
        );
    }

    #[test]
    fn max_degree_closer_than_sbm() {
        // The degree correction must keep the hubs; plain SBM flattens block
        // degrees to the ER mean. Compare max-degree recovery.
        let (g, labels) = hubby_two_blocks();
        let target = stats::degree::max_degree(&g) as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let dc = Dcsbm::fit_with_labels(&g, &labels);
        let sbm = crate::sbm::Sbm::fit_with_labels(&g, &labels);
        let mut dc_err = 0.0;
        let mut sbm_err = 0.0;
        for _ in 0..10 {
            dc_err += (stats::degree::max_degree(&dc.generate(&mut rng)) as f64 - target).abs();
            sbm_err += (stats::degree::max_degree(&sbm.generate(&mut rng)) as f64 - target).abs();
        }
        assert!(dc_err < sbm_err, "dcsbm {dc_err} vs sbm {sbm_err}");
    }

    #[test]
    fn communities_preserved() {
        let (g, labels) = hubby_two_blocks();
        let model = Dcsbm::fit_with_labels(&g, &labels);
        let mut rng = StdRng::seed_from_u64(3);
        let out = model.generate(&mut rng);
        let detected = louvain::louvain(&out, 0);
        let nmi = metrics::nmi(detected.labels(), &labels);
        assert!(nmi > 0.3, "nmi {nmi}");
    }
}
