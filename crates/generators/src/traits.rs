//! The uniform generator interface.

use cpgan_graph::Graph;
use rand::RngCore;

/// A fitted graph generative model that can sample new graphs.
///
/// `generate` takes a dynamic RNG so heterogeneous generators can be stored
/// behind trait objects in the evaluation harness.
pub trait GraphGenerator {
    /// Display name used in tables (matches the paper's row labels).
    fn name(&self) -> &'static str;

    /// Samples a new graph from the fitted model.
    fn generate(&self, rng: &mut dyn RngCore) -> Graph;
}
