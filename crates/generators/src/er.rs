//! Erdős–Rényi random graphs (paper baseline "E-R").

use crate::GraphGenerator;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// The `G(n, m)` Erdős–Rényi model: fixed node and edge counts, edges chosen
/// uniformly at random without replacement.
#[derive(Debug, Clone)]
pub struct ErdosRenyi {
    n: usize,
    m: usize,
}

impl ErdosRenyi {
    /// Fits the model: just the observed `n` and `m`.
    pub fn fit(g: &Graph) -> Self {
        ErdosRenyi { n: g.n(), m: g.m() }
    }

    /// Builds the model directly from counts.
    pub fn with_counts(n: usize, m: usize) -> Self {
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        ErdosRenyi { n, m: m.min(max) }
    }

    /// The edge probability the equivalent `G(n, p)` model would use.
    pub fn edge_probability(&self) -> f64 {
        let possible = self.n as f64 * (self.n as f64 - 1.0) / 2.0;
        if possible == 0.0 {
            0.0
        } else {
            self.m as f64 / possible
        }
    }
}

impl GraphGenerator for ErdosRenyi {
    fn name(&self) -> &'static str {
        "E-R"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.n, self.m);
        if self.n < 2 {
            return b.build();
        }
        let mut seen = std::collections::HashSet::with_capacity(self.m * 2);
        while seen.len() < self.m {
            let u = rng.gen_range(0..self.n as NodeId);
            let v = rng.gen_range(0..self.n as NodeId);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.push_edge(key.0, key.1);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let model = ErdosRenyi::with_counts(100, 250);
        let mut rng = StdRng::seed_from_u64(0);
        let g = model.generate(&mut rng);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 250);
    }

    #[test]
    fn fit_round_trip_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g1 = ErdosRenyi::with_counts(60, 120).generate(&mut rng);
        let model = ErdosRenyi::fit(&g1);
        let g2 = model.generate(&mut rng);
        assert_eq!(g2.n(), g1.n());
        assert_eq!(g2.m(), g1.m());
    }

    #[test]
    fn m_clamped_to_possible() {
        let model = ErdosRenyi::with_counts(4, 100);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(model.generate(&mut rng).m(), 6);
    }

    #[test]
    fn edge_probability() {
        let model = ErdosRenyi::with_counts(5, 5);
        assert!((model.edge_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ErdosRenyi::with_counts(0, 0).generate(&mut rng).n(), 0);
        assert_eq!(ErdosRenyi::with_counts(1, 5).generate(&mut rng).m(), 0);
    }
}
