//! Barabási–Albert preferential attachment (paper baseline "B-A").

use crate::GraphGenerator;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// The B-A model: nodes arrive one at a time and attach `m_per_node` edges
/// to existing nodes with probability proportional to degree.
#[derive(Debug, Clone)]
pub struct BarabasiAlbert {
    n: usize,
    m_per_node: usize,
}

impl BarabasiAlbert {
    /// Fits `m_per_node` from the observed mean degree (`m/n` rounded,
    /// at least 1).
    pub fn fit(g: &Graph) -> Self {
        let m_per_node = ((g.m() as f64 / g.n().max(1) as f64).round() as usize).max(1);
        BarabasiAlbert {
            n: g.n(),
            m_per_node,
        }
    }

    /// Builds the model directly.
    pub fn new(n: usize, m_per_node: usize) -> Self {
        BarabasiAlbert {
            n,
            m_per_node: m_per_node.max(1),
        }
    }
}

impl GraphGenerator for BarabasiAlbert {
    fn name(&self) -> &'static str {
        "B-A"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.n;
        let m0 = self.m_per_node;
        let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(m0));
        if n < 2 {
            return b.build();
        }
        // `targets` holds one entry per edge endpoint, so sampling uniformly
        // from it is degree-proportional sampling (the standard trick).
        let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(2 * n * m0);
        // Seed: a small connected core of m0+1 nodes (a star keeps it simple
        // and connected).
        let core = (m0 + 1).min(n);
        for v in 1..core {
            b.push_edge(0, v as NodeId);
            endpoint_pool.push(0);
            endpoint_pool.push(v as NodeId);
        }
        for v in core..n {
            let v = v as NodeId;
            let mut chosen = std::collections::HashSet::with_capacity(m0);
            // Degree-proportional sampling without replacement.
            let mut guard = 0;
            while chosen.len() < m0.min(v as usize) && guard < 50 * m0 {
                let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
                chosen.insert(t);
                guard += 1;
            }
            // Sorted drain — this one is load-bearing: `endpoint_pool`
            // feeds every later degree-proportional draw, so pushing in
            // HashSet order would make the whole generated graph depend on
            // the per-process hash seed (DESIGN.md §8).
            let mut targets: Vec<NodeId> = chosen.into_iter().collect();
            targets.sort_unstable();
            for t in targets {
                b.push_edge(v, t);
                endpoint_pool.push(v);
                endpoint_pool.push(t);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_graph::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let model = BarabasiAlbert::new(200, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let g = model.generate(&mut rng);
        assert_eq!(g.n(), 200);
        // Every arrival adds ~3 edges; the seed star adds 3.
        assert!(g.m() >= 3 * (200 - 4) && g.m() <= 3 * 200, "m = {}", g.m());
    }

    #[test]
    fn produces_heavy_tail() {
        let model = BarabasiAlbert::new(500, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let g = model.generate(&mut rng);
        let max_deg = stats::degree::max_degree(&g);
        // Preferential attachment produces hubs far above the mean degree.
        assert!(max_deg > 20, "max degree {max_deg}");
        let gini = stats::gini::gini_coefficient(&g.degrees());
        assert!(gini > 0.2, "gini {gini}");
    }

    #[test]
    fn connected_graph() {
        let model = BarabasiAlbert::new(100, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let g = model.generate(&mut rng);
        assert_eq!(g.largest_component().len(), 100);
    }

    #[test]
    fn fit_preserves_mean_degree_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let g1 = BarabasiAlbert::new(300, 4).generate(&mut rng);
        let model = BarabasiAlbert::fit(&g1);
        let g2 = model.generate(&mut rng);
        let ratio = g2.mean_degree() / g1.mean_degree();
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }
}
