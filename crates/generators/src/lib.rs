#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Traditional graph generators (paper §II-B1, Tables III/IV/VII baselines).
//!
//! Every model follows the same two-phase API: `fit` learns parameters from
//! an observed graph, `generate` draws a new graph from the fitted model.
//! The [`GraphGenerator`] trait gives the evaluation harness a uniform view.
//!
//! # Example
//!
//! ```
//! use cpgan_graph::Graph;
//! use cpgan_generators::{er::ErdosRenyi, GraphGenerator};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let observed = Graph::from_edges(50, (0..49u32).map(|i| (i, i + 1))).unwrap();
//! let model = ErdosRenyi::fit(&observed);
//! let mut rng = StdRng::seed_from_u64(7);
//! let generated = model.generate(&mut rng);
//! assert_eq!(generated.n(), 50);
//! ```

pub mod ba;
pub mod bter;
pub mod chung_lu;
pub mod dcsbm;
pub mod er;
pub mod kronecker;
pub mod mmsb;
pub mod sbm;
mod traits;
pub mod ws;

pub use traits::GraphGenerator;
