//! Chung–Lu random graphs with given expected degrees (paper baseline
//! "Chung-Lu").

use crate::GraphGenerator;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};

/// The Chung–Lu model: edge `{i, j}` appears independently with probability
/// `min(1, w_i w_j / sum_k w_k)` where `w` is the target degree sequence.
///
/// Generation uses the Miller–Hagberg O(n + m) algorithm (sorted weights,
/// geometric skipping), so it scales to the 100k-node efficiency sweeps
/// (Table VII).
#[derive(Debug, Clone)]
pub struct ChungLu {
    /// Target degree sequence, sorted descending.
    weights: Vec<f64>,
    /// Original node index of each sorted position.
    order: Vec<NodeId>,
    weight_sum: f64,
}

impl ChungLu {
    /// Fits the model from the observed degree sequence.
    pub fn fit(g: &Graph) -> Self {
        Self::from_degrees(g.degrees().into_iter().map(|d| d as f64).collect())
    }

    /// Builds from an explicit expected-degree sequence.
    pub fn from_degrees(degrees: Vec<f64>) -> Self {
        let mut idx: Vec<usize> = (0..degrees.len()).collect();
        idx.sort_by(|&a, &b| degrees[b].total_cmp(&degrees[a]));
        let order: Vec<NodeId> = idx.iter().map(|&i| i as NodeId).collect();
        let weights: Vec<f64> = idx.iter().map(|&i| degrees[i]).collect();
        let weight_sum: f64 = weights.iter().sum();
        ChungLu {
            weights,
            order,
            weight_sum,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.weights.len()
    }
}

impl GraphGenerator for ChungLu {
    fn name(&self) -> &'static str {
        "Chung-Lu"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.n();
        let mut b = GraphBuilder::with_capacity(n, (self.weight_sum / 2.0) as usize + 1);
        if n < 2 || self.weight_sum <= 0.0 {
            return b.build();
        }
        let s = self.weight_sum;
        for i in 0..n - 1 {
            let wi = self.weights[i];
            if wi <= 0.0 {
                break; // weights are sorted; the rest are zero too.
            }
            let mut j = i + 1;
            // Probability for the current "run" of candidates; since weights
            // are sorted descending, p only decreases as j grows, enabling
            // geometric jumps with rejection.
            let mut p = (wi * self.weights[j] / s).min(1.0);
            while j < n && p > 0.0 {
                if p < 1.0 {
                    // Skip ahead geometrically: next candidate at distance
                    // ~ Geom(p).
                    let r: f64 = rng.gen::<f64>();
                    let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                    j += skip;
                }
                if j >= n {
                    break;
                }
                let q = (wi * self.weights[j] / s).min(1.0);
                // Accept with q/p (q <= p by sortedness).
                if rng.gen::<f64>() < q / p {
                    b.push_edge(self.order[i], self.order[j]);
                }
                p = q;
                j += 1;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_edge_count_matches() {
        // Regular weights: expected m ~= n*w/2.
        let model = ChungLu::from_degrees(vec![6.0; 400]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0usize;
        let reps = 10;
        for _ in 0..reps {
            total += model.generate(&mut rng).m();
        }
        let avg = total as f64 / reps as f64;
        assert!((avg - 1200.0).abs() < 120.0, "avg edges {avg}");
    }

    #[test]
    fn high_weight_nodes_get_high_degree() {
        let mut degrees = vec![2.0; 300];
        degrees[0] = 80.0;
        let model = ChungLu::from_degrees(degrees);
        let mut rng = StdRng::seed_from_u64(1);
        let g = model.generate(&mut rng);
        let d0 = g.degree(0);
        assert!(d0 > 40, "hub degree {d0}");
    }

    #[test]
    fn fit_preserves_total_degree_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = crate::er::ErdosRenyi::with_counts(200, 600).generate(&mut rng);
        let model = ChungLu::fit(&base);
        let mut total = 0usize;
        for _ in 0..5 {
            total += model.generate(&mut rng).m();
        }
        let avg = total as f64 / 5.0;
        assert!((avg - 600.0).abs() < 80.0, "avg {avg}");
    }

    #[test]
    fn zero_weights_yield_isolated_nodes() {
        let model = ChungLu::from_degrees(vec![3.0, 3.0, 0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = model.generate(&mut rng);
            assert_eq!(g.degree(2), 0);
            assert_eq!(g.degree(3), 0);
        }
    }

    #[test]
    fn empty_model() {
        let model = ChungLu::from_degrees(vec![]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(model.generate(&mut rng).n(), 0);
    }
}
