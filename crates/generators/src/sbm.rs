//! Stochastic block model (paper baseline "SBM", §II-A Eq. 4).

use crate::GraphGenerator;
use cpgan_community::louvain;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, RngCore};
use rand_distr::{Binomial, Distribution};

/// A fitted SBM: a node partition plus a symmetric block probability matrix
/// (one parameter per community pair, as the paper stresses when discussing
/// SBM's limited capacity).
#[derive(Debug, Clone)]
pub struct Sbm {
    /// Community label per node.
    labels: Vec<usize>,
    /// Members per community.
    blocks: Vec<Vec<NodeId>>,
    /// `block_p[r][s]`: edge probability between communities `r <= s`.
    block_p: Vec<Vec<f64>>,
}

impl Sbm {
    /// Fits the model using Louvain for the partition and maximum-likelihood
    /// block densities.
    pub fn fit(g: &Graph, seed: u64) -> Self {
        let part = louvain::louvain(g, seed);
        Self::fit_with_labels(g, part.labels())
    }

    /// Fits with the block count capped at `max_blocks`, merging the
    /// smallest Louvain communities into a residual block. This mirrors the
    /// limited capacity of the reference SBM implementations the paper
    /// compares against ("only one parameter is used to capture each
    /// community", §II-B1) whose default block counts are small.
    pub fn fit_capped(g: &Graph, seed: u64, max_blocks: usize) -> Self {
        let part = louvain::louvain(g, seed);
        let capped = cap_labels(part.labels(), max_blocks);
        Self::fit_with_labels(g, &capped)
    }

    /// Fits with a given partition (used by the data crate's planted
    /// graphs and by DCSBM's shared plumbing).
    pub fn fit_with_labels(g: &Graph, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), g.n());
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut blocks = vec![Vec::new(); k];
        for (v, &l) in labels.iter().enumerate() {
            blocks[l].push(v as NodeId);
        }
        let mut edge_counts = vec![vec![0u64; k]; k];
        for &(u, v) in g.edges() {
            let (r, s) = (labels[u as usize], labels[v as usize]);
            let (r, s) = if r <= s { (r, s) } else { (s, r) };
            edge_counts[r][s] += 1;
        }
        let mut block_p = vec![vec![0.0f64; k]; k];
        for r in 0..k {
            for s in r..k {
                let possible = if r == s {
                    let nr = blocks[r].len() as f64;
                    nr * (nr - 1.0) / 2.0
                } else {
                    blocks[r].len() as f64 * blocks[s].len() as f64
                };
                block_p[r][s] = if possible > 0.0 {
                    (edge_counts[r][s] as f64 / possible).min(1.0)
                } else {
                    0.0
                };
            }
        }
        Sbm {
            labels: labels.to_vec(),
            blocks,
            block_p,
        }
    }

    /// The fitted partition labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block probability between communities `r` and `s`.
    pub fn block_probability(&self, r: usize, s: usize) -> f64 {
        let (r, s) = if r <= s { (r, s) } else { (s, r) };
        self.block_p[r][s]
    }
}

/// Remaps `labels` so at most `max_blocks` distinct blocks remain: the
/// largest `max_blocks - 1` communities keep their identity and everything
/// else merges into one residual block.
pub(crate) fn cap_labels(labels: &[usize], max_blocks: usize) -> Vec<usize> {
    let max_blocks = max_blocks.max(1);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k <= max_blocks {
        return labels.to_vec();
    }
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
    let mut remap = vec![max_blocks - 1; k];
    for (new, &old) in order.iter().take(max_blocks - 1).enumerate() {
        remap[old] = new;
    }
    labels.iter().map(|&l| remap[l]).collect()
}

/// Samples `count` distinct pairs from a block pair and pushes them as edges.
pub(crate) fn sample_block_edges(
    b: &mut GraphBuilder,
    rng: &mut dyn RngCore,
    block_r: &[NodeId],
    block_s: &[NodeId],
    same: bool,
    count: u64,
) {
    let mut seen = std::collections::HashSet::with_capacity(count as usize * 2);
    let mut placed = 0u64;
    let mut guard = 0u64;
    let limit = 20 * count + 100;
    while placed < count && guard < limit {
        guard += 1;
        let u = block_r[rng.gen_range(0..block_r.len())];
        let v = block_s[rng.gen_range(0..block_s.len())];
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if same && key.0 == key.1 {
            continue;
        }
        if seen.insert(key) {
            b.push_edge(key.0, key.1);
            placed += 1;
        }
    }
}

impl GraphGenerator for Sbm {
    fn name(&self) -> &'static str {
        "SBM"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let n = self.labels.len();
        let mut b = GraphBuilder::new(n);
        let k = self.blocks.len();
        for r in 0..k {
            for s in r..k {
                let p = self.block_p[r][s];
                if p <= 0.0 || self.blocks[r].is_empty() || self.blocks[s].is_empty() {
                    continue;
                }
                let possible = if r == s {
                    let nr = self.blocks[r].len() as u64;
                    nr * (nr - 1) / 2
                } else {
                    self.blocks[r].len() as u64 * self.blocks[s].len() as u64
                };
                if possible == 0 {
                    continue;
                }
                // `p` is clamped into [0, 1], so construction only fails
                // on a NaN probability — skip such degenerate blocks.
                let Ok(dist) = Binomial::new(possible, p.clamp(0.0, 1.0)) else {
                    continue;
                };
                let count = dist.sample(rng);
                sample_block_edges(&mut b, rng, &self.blocks[r], &self.blocks[s], r == s, count);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques() -> (Graph, Vec<usize>) {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        edges.push((0, 8));
        let labels = (0..16).map(|v| (v >= 8) as usize).collect();
        (Graph::from_edges(16, edges).unwrap(), labels)
    }

    #[test]
    fn fit_recovers_block_densities() {
        let (g, labels) = two_cliques();
        let model = Sbm::fit_with_labels(&g, &labels);
        assert_eq!(model.community_count(), 2);
        assert!((model.block_probability(0, 0) - 1.0).abs() < 1e-12);
        assert!((model.block_probability(1, 1) - 1.0).abs() < 1e-12);
        assert!((model.block_probability(0, 1) - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn generated_graph_has_similar_density() {
        let (g, labels) = two_cliques();
        let model = Sbm::fit_with_labels(&g, &labels);
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), 16);
        let diff = (out.m() as i64 - g.m() as i64).abs();
        assert!(diff <= 8, "edge count diff {diff}");
    }

    #[test]
    fn community_structure_survives_generation() {
        let (g, labels) = two_cliques();
        let model = Sbm::fit_with_labels(&g, &labels);
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&mut rng);
        let detected = louvain::louvain(&out, 0);
        let nmi = metrics::nmi(detected.labels(), &labels);
        assert!(nmi > 0.8, "nmi {nmi}");
    }

    #[test]
    fn fit_with_louvain_runs() {
        let (g, _) = two_cliques();
        let model = Sbm::fit(&g, 3);
        assert!(model.community_count() >= 2);
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
    }
}
