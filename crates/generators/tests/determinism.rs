//! Determinism regression for the traditional generators — in particular
//! Barabási–Albert, whose endpoint pool was fed in HashSet order before
//! PR 6 (hash-seeded per process, so every run grew a different graph).
//! The edge list is pinned through an FNV-1a checksum so any cross-process
//! drift shows up as a constant mismatch, not just a flaky rerun.
//!
//! After an *intended* generator change, regenerate with:
//!
//! ```text
//! cargo test -p cpgan-generators --test determinism -- --ignored regenerate --nocapture
//! ```

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_generators::{ba::BarabasiAlbert, GraphGenerator};
use cpgan_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over the canonical edge list (order included: the list itself is
/// canonical, so this pins both membership and ordering).
fn edge_checksum(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(u, v) in g.edges() {
        mix(u);
        mix(v);
    }
    h
}

fn generate(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    BarabasiAlbert::new(200, 3).generate(&mut rng)
}

/// Cross-process pin: this constant was produced by one run and must hold
/// for every run on every machine (DESIGN.md §8).
const BA_CHECKSUM_SEED42: u64 = 0xec96_c039_00bf_90b7;

#[test]
fn ba_edge_list_is_pinned_across_processes() {
    let g = generate(42);
    assert_eq!(
        edge_checksum(&g),
        BA_CHECKSUM_SEED42,
        "B-A output drifted (n={}, m={}): got {:#018x}",
        g.n(),
        g.m(),
        edge_checksum(&g)
    );
}

#[test]
fn ba_same_seed_is_bit_identical() {
    assert_eq!(generate(7).edges(), generate(7).edges());
}

#[test]
fn ba_different_seeds_differ() {
    // Not a determinism property, but guards against the checksum passing
    // vacuously (e.g. an empty edge list).
    let (a, b) = (generate(1), generate(2));
    assert!(a.m() > 0);
    assert_ne!(a.edges(), b.edges());
}

#[test]
#[ignore = "prints the current checksum; run after an intended generator change"]
fn regenerate() {
    println!(
        "BA_CHECKSUM_SEED42: u64 = {:#018x};",
        edge_checksum(&generate(42))
    );
}
