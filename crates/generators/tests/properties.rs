//! Property-based tests across all traditional generators.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_generators::{
    ba::BarabasiAlbert, bter::Bter, chung_lu::ChungLu, dcsbm::Dcsbm, er::ErdosRenyi,
    kronecker::Kronecker, mmsb::Mmsb, sbm::Sbm, GraphGenerator,
};
use cpgan_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random observed graph to fit against.
fn arb_observed() -> impl Strategy<Value = Graph> {
    (10usize..40, 1usize..4).prop_flat_map(|(n, deg)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), n * deg)
            .prop_map(move |edges| Graph::from_edges(n, edges).unwrap())
    })
}

/// Every generator must produce a well-formed graph on the same node set.
fn check_generator(model: &dyn GraphGenerator, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = model.generate(&mut rng);
    assert_eq!(out.n(), n, "{} changed node count", model.name());
    for &(u, v) in out.edges() {
        assert!(u < v, "{} produced non-canonical edge", model.name());
        assert!((v as usize) < n, "{} out-of-range edge", model.name());
    }
    // Degrees must satisfy the handshake lemma (Graph guarantees it, but a
    // generator that bypassed the builder could break it).
    let total: usize = out.degrees().iter().sum();
    assert_eq!(total, 2 * out.m());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_generators_well_formed(g in arb_observed(), seed in 0u64..1000) {
        let n = g.n();
        check_generator(&ErdosRenyi::fit(&g), n, seed);
        check_generator(&BarabasiAlbert::fit(&g), n, seed);
        check_generator(&ChungLu::fit(&g), n, seed);
        check_generator(&Sbm::fit(&g, 1), n, seed);
        check_generator(&Dcsbm::fit(&g, 1), n, seed);
        check_generator(&Bter::fit(&g), n, seed);
        check_generator(&Kronecker::fit(&g), n, seed);
        check_generator(&Mmsb::fit(&g, 1, 0.1), n, seed);
    }

    #[test]
    fn er_edge_count_exact(g in arb_observed(), seed in 0u64..1000) {
        let model = ErdosRenyi::fit(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(model.generate(&mut rng).m(), g.m());
    }

    #[test]
    fn chung_lu_total_degree_unbiased(seed in 0u64..100) {
        let degrees: Vec<f64> = (0..50).map(|i| 1.0 + (i % 7) as f64).collect();
        let expected: f64 = degrees.iter().sum::<f64>() / 2.0;
        let model = ChungLu::from_degrees(degrees);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0usize;
        for _ in 0..8 {
            total += model.generate(&mut rng).m();
        }
        let avg = total as f64 / 8.0;
        prop_assert!((avg - expected).abs() < 0.5 * expected, "avg {avg} expected {expected}");
    }

    #[test]
    fn generators_deterministic_per_seed(g in arb_observed(), seed in 0u64..1000) {
        let model = Sbm::fit(&g, 5);
        let a = model.generate(&mut StdRng::seed_from_u64(seed));
        let b = model.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
