//! Criterion benchmarks for *training* throughput (Table VIII companion).

use cpgan_data::sweep;
use cpgan_eval::registry::{fit_model, ModelKind};
use cpgan_eval::EvalConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_training(c: &mut Criterion) {
    // A couple of epochs per fit; criterion reports per-fit time, which is
    // proportional to per-epoch cost.
    let cfg = EvalConfig {
        deep_epochs: 2,
        cpgan_epochs: 2,
        ..EvalConfig::fast()
    };
    let mut group = c.benchmark_group("training_2_epochs");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let pg = sweep::sweep_graph(n, 1);
        for kind in [
            ModelKind::Vgae,
            ModelKind::Graphite,
            ModelKind::Sbmgnn,
            ModelKind::NetGan,
            ModelKind::CpGan(cpgan::Variant::Full),
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(fit_model(kind, &pg.graph, &cfg, 3)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
