//! Ablation bench: degree-proportional vs uniform subgraph sampling
//! (paper §III-E; DESIGN.md §5).

use cpgan::sampling;
use cpgan_data::sweep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph_sampling");
    for &n in &[1_000usize, 10_000, 100_000] {
        let pg = sweep::sweep_graph(n, 1);
        group.bench_with_input(BenchmarkId::new("degree_proportional", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| std::hint::black_box(sampling::sample_subgraph(&pg.graph, 200, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let nodes = sampling::sample_nodes_uniform(&pg.graph, 200, &mut rng);
                std::hint::black_box(pg.graph.induced_subgraph(&nodes))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
