//! Criterion micro-benchmarks for graph *generation* (Table VII companion).
//!
//! Run with `cargo bench -p bench --bench generation`.

use cpgan_data::sweep;
use cpgan_eval::registry::{fit_model, ModelKind};
use cpgan_eval::EvalConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let cfg = EvalConfig {
        deep_epochs: 20,
        cpgan_epochs: 10,
        ..EvalConfig::fast()
    };
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for &n in &[100usize, 1_000] {
        let pg = sweep::sweep_graph(n, 1);
        for kind in [
            ModelKind::Er,
            ModelKind::Bter,
            ModelKind::Sbm,
            ModelKind::Kronecker,
            ModelKind::Vgae,
            ModelKind::CpGan(cpgan::Variant::Full),
        ] {
            let model = fit_model(kind, &pg.graph, &cfg, 3);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| std::hint::black_box(model.generate(&mut rng)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
