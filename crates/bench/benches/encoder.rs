//! Ablation bench: ladder pooling vs a plain deep GCN stack
//! (DESIGN.md §5 / paper's CPGAN-noH claim that the ladder is cheaper and
//! more effective than stacking depth).

use cpgan::config::{CpGanConfig, Variant};
use cpgan::encoder::{AdjInput, LadderEncoder};
use cpgan_data::sweep;
use cpgan_graph::spectral;
use cpgan_nn::{Csr, Matrix, ParamStore, Tape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_forward");
    group.sample_size(20);
    for &n in &[200usize, 800] {
        let pg = sweep::sweep_graph(n, 1);
        let adj = Arc::new(Csr::normalized_adjacency(&pg.graph));
        let spec = spectral::spectral_embedding(&pg.graph, 4, 7);
        let feats = Matrix::from_fn(n, 5, |r, c| {
            if c < 4 {
                spec[r * 4 + c]
            } else {
                (pg.graph.degree(r as u32) as f32 + 1.0).ln()
            }
        });
        for (label, variant, levels) in [
            ("ladder-2", Variant::Full, 2),
            ("ladder-3", Variant::Full, 3),
            ("flat", Variant::NoHierarchy, 1),
        ] {
            let cfg = CpGanConfig {
                variant,
                levels,
                sample_size: n,
                hidden_dim: 16,
                spectral_dim: 4,
                ..CpGanConfig::tiny()
            };
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(1);
            let enc = LadderEncoder::new(&mut store, &mut rng, &cfg);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let tape = Tape::new();
                    let x = tape.constant(feats.clone());
                    let out = enc.encode(&tape, &AdjInput::Sparse(Arc::clone(&adj)), &x);
                    std::hint::black_box(out.readout_flat.value())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
