//! Benchmarks for the evaluation metrics themselves (Louvain, NMI/ARI, MMD,
//! graph statistics) — these dominate the harness cost on large graphs.

use cpgan_community::{louvain, metrics};
use cpgan_data::sweep;
use cpgan_graph::{mmd, stats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let pg = sweep::sweep_graph(n, 1);
        let pg2 = sweep::sweep_graph(n, 2);
        group.bench_with_input(BenchmarkId::new("louvain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(louvain::louvain(&pg.graph, 0)));
        });
        let part1 = louvain::louvain(&pg.graph, 0);
        let part2 = louvain::louvain(&pg2.graph, 0);
        group.bench_with_input(BenchmarkId::new("nmi+ari", n), &n, |b, _| {
            b.iter(|| {
                let nmi = metrics::nmi(part1.labels(), part2.labels());
                let ari = metrics::adjusted_rand_index(part1.labels(), part2.labels());
                std::hint::black_box((nmi, ari))
            });
        });
        group.bench_with_input(BenchmarkId::new("degree_mmd", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(mmd::degree_mmd(&pg.graph, &pg2.graph)));
        });
        group.bench_with_input(BenchmarkId::new("clustering", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(stats::clustering::mean_clustering(&pg.graph)));
        });
        group.bench_with_input(BenchmarkId::new("cpl_64_sources", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(stats::path::characteristic_path_length(&pg.graph, 64)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
