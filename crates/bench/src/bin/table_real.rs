//! Runs the Table III/IV metrics on an *ingested* registry dataset
//! (default: the vendored `citeseer-fixture` synthetic surrogate; pass an
//! upstream name once its real files are in the cache), printing the
//! reference-stat verification report first.
//!
//! Usage: `cargo run --release -p bench --bin table_real -- \
//!     [DATASET] [--offline] [--data-dir DIR] [--seeds K] [--fast] [--json FILE]`

use cpgan_datasets::LoadOptions;
use cpgan_eval::{pipelines::real, EvalConfig};
use std::path::PathBuf;

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table_real: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cfg = EvalConfig::from_args(args);
    // The first positional (non-flag, non-flag-value) argument names the
    // dataset; everything else is shared EvalConfig/report plumbing.
    const VALUE_FLAGS: [&str; 6] = [
        "--scale",
        "--seeds",
        "--deep-epochs",
        "--cpgan-epochs",
        "--json",
        "--data-dir",
    ];
    let mut name = "citeseer-fixture";
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            name = a;
            i += 1;
        }
    }
    let opts = LoadOptions {
        offline: args.iter().any(|a| a == "--offline"),
        data_dir: args
            .iter()
            .position(|a| a == "--data-dir")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from),
        scale: cfg.scale,
        seed: cfg.seed,
        ..LoadOptions::default()
    };
    eprintln!(
        "evaluating every generator on '{name}' with {} seed(s)...",
        cfg.seeds
    );
    let (report, table) = real::run(&cfg, name, &opts).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(args, &table);
    cpgan_obs::finish(Some("results/obs.table_real.jsonl"));
    Ok(())
}
