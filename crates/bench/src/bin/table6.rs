//! Regenerates paper Table VI (CPGAN ablation study).
//!
//! Usage: `cargo run --release -p bench --bin table6 [--fast] [--scale S]`

use cpgan_eval::{pipelines::ablation, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("running Table VI at scale 1/{}...", cfg.scale);
    let table = ablation::run(&cfg, &[]);
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(&args, &table);
    cpgan_obs::finish(Some("results/obs.table6.jsonl"));
}
