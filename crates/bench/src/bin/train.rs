//! Fused+batched vs unfused+unbatched subgraph training throughput,
//! written to `results/BENCH_train.json`.
//!
//! Usage: `cargo run --release -p bench --bin train
//!         [--threads N] [--assert-min-ratio R]`
//!
//! Both legs train the same two-layer GCN autoencoder on the same seeded
//! stream of degree-proportional subgraph draws (DESIGN §13), so the work
//! per epoch is identical math over identical data:
//!
//! * `unfused` — one tape, one optimizer step, and one composed
//!   `matmul → spmm → add_row_broadcast → relu` chain *per subgraph*, the
//!   historical training loop shape,
//! * `fused` — the whole batch packed into one `BlockDiagCsr` and pushed
//!   through the fused `spmm_bias_act` op, one optimizer step per batch.
//!
//! Epochs/second are reported for both legs pinned to 1 thread (the
//! apples-to-apples figure the CI gate reads) plus the fused leg at `N`
//! threads (informational). `--assert-min-ratio R` exits nonzero unless
//! `fused_serial / unfused_serial >= R` — the CI regression gate for the
//! fusion/batching work.

use bench::BenchMeta;
use cpgan_deep::common;
use cpgan_graph::sampling::SubgraphSampler;
use cpgan_nn::layers::Linear;
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{Csr, FusedAct, Matrix, ParamStore, Tape, Var};
use cpgan_parallel::with_thread_count;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fixture half-block size (full graph has `2 * BLOCK` nodes).
const BLOCK: usize = 200;
const SAMPLE_SIZE: usize = 12;
const BATCH_SIZE: usize = 48;
const FEATURE_DIM: usize = 16;
const HIDDEN_DIM: usize = 32;
const LATENT_DIM: usize = 16;
/// Training epochs per timed repetition (1 epoch = `BATCH_SIZE` subgraphs).
const EPOCHS_PER_REP: usize = 10;
const REPS: usize = 9;
const SAMPLER_SEED: u64 = 0xbe9c;

/// The two-layer GCN autoencoder both legs train: `relu(Â X W1 + b1)` then
/// `Â H W2 + b2`, inner-product decode, class-balanced BCE.
struct Model {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
}

impl Model {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, &mut rng, FEATURE_DIM, HIDDEN_DIM, true);
        let l2 = Linear::new(&mut store, &mut rng, HIDDEN_DIM, LATENT_DIM, true);
        Model { store, l1, l2 }
    }
}

/// One unfused, unbatched training pass: a separate tape, composed op
/// chain, and optimizer step per subgraph.
fn run_unfused(g: &cpgan_graph::Graph, feats: &Matrix, model: &Model, opt: &mut Adam) {
    let mut sampler = SubgraphSampler::new(SAMPLER_SEED);
    for _ in 0..EPOCHS_PER_REP {
        let draws = sampler
            .next_batch(g, SAMPLE_SIZE, BATCH_SIZE)
            .unwrap_or_default();
        for (sub, ids) in draws {
            let adj = Arc::new(Csr::normalized_adjacency(&sub));
            let (target, weights) = common::adjacency_target(&sub);
            let mut data = Vec::with_capacity(sub.n() * FEATURE_DIM);
            for &id in &ids {
                data.extend_from_slice(feats.row(id as usize));
            }
            let tape = Tape::new();
            let x = tape.constant(Matrix::from_vec(sub.n(), FEATURE_DIM, data));
            let b1 = model.l1.bias().map(|b| tape.param(b));
            let b2 = model.l2.bias().map(|b| tape.param(b));
            let mut h = model.l1.forward_weight(&tape, &x).spmm(&adj);
            if let Some(b) = &b1 {
                h = h.add_row_broadcast(b);
            }
            let h = h.relu();
            let mut z = model.l2.forward_weight(&tape, &h).spmm(&adj);
            if let Some(b) = &b2 {
                z = z.add_row_broadcast(b);
            }
            let logits = z.matmul(&z.transpose());
            let loss = logits.bce_with_logits_mean(&target, Some(&weights));
            model.store.zero_grad();
            loss.backward();
            opt.step(&model.store);
        }
    }
}

/// One fused, batched training pass: the whole batch packed into a
/// `BlockDiagCsr`, fused `spmm_bias_act` per layer, one optimizer step
/// per batch.
fn run_fused(g: &cpgan_graph::Graph, feats: &Matrix, model: &Model, opt: &mut Adam) {
    let mut sampler = SubgraphSampler::new(SAMPLER_SEED);
    let inv_b = 1.0 / BATCH_SIZE as f32;
    for _ in 0..EPOCHS_PER_REP {
        let batch = common::sample_batch(g, feats, &mut sampler, SAMPLE_SIZE, BATCH_SIZE);
        let tape = Tape::new();
        let x = tape.constant(batch.feats.clone());
        let b1 = model.l1.bias().map(|b| tape.param(b));
        let b2 = model.l2.bias().map(|b| tape.param(b));
        let h = model.l1.forward_weight(&tape, &x).spmm_bias_act_batched(
            &batch.ops,
            b1.as_ref(),
            FusedAct::Relu,
        );
        let z = model.l2.forward_weight(&tape, &h).spmm_bias_act_batched(
            &batch.ops,
            b2.as_ref(),
            FusedAct::Identity,
        );
        let mut loss: Option<Var> = None;
        for (b, rows) in batch.rows.iter().enumerate() {
            let zb = z.gather_rows(rows);
            let logits = zb.matmul(&zb.transpose());
            let (t, w) = &batch.targets[b];
            let r = logits.bce_with_logits_mean(t, Some(w));
            loss = Some(match loss {
                None => r,
                Some(acc) => acc.add(&r),
            });
        }
        let Some(loss) = loss else { continue };
        let loss = loss.scale(inv_b);
        model.store.zero_grad();
        loss.backward();
        opt.step(&model.store);
    }
}

fn time_once(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let flag_threads = flag("--threads").and_then(|v| v.parse::<usize>().ok());
    // Same single-core convention as the parallel bench: the parallel leg is
    // informational, so force an oversubscribed count and flag it rather
    // than silently re-measuring the serial figure.
    let (threads, warning) = match flag_threads {
        Some(t) => (t.max(1), None),
        None if hw > 1 => (hw, None),
        None => (
            4,
            Some(
                "available_parallelism() == 1: fused parallel leg forced to 4 \
                 oversubscribed threads; its figure measures overhead, not scaling",
            ),
        ),
    };
    let min_ratio = flag("--assert-min-ratio").and_then(|v| v.parse::<f64>().ok());
    let meta = BenchMeta::capture(threads);
    if let Some(w) = warning {
        eprintln!("WARNING: {w}");
    }
    eprintln!(
        "subgraph training: unfused/unbatched vs fused/batched, \
         {BATCH_SIZE}x{SAMPLE_SIZE}-node subgraphs, serial + {threads} thread(s)..."
    );

    let (g, _) = common::two_block_fixture(BLOCK);
    let feats = common::features(&g, FEATURE_DIM, 1);
    // Each leg keeps its own model + Adam state so neither warms the other's
    // buffers or moments; both start from identical seeded weights.
    let m_unfused = Model::new(7);
    let m_fused = Model::new(7);
    let m_fused_par = Model::new(7);
    let mut opt_unfused = Adam::with_lr(5e-3);
    let mut opt_fused = Adam::with_lr(5e-3);
    let mut opt_fused_par = Adam::with_lr(5e-3);

    // Untimed warm-up primes buffer pools and Adam state.
    with_thread_count(1, || run_unfused(&g, &feats, &m_unfused, &mut opt_unfused));
    with_thread_count(1, || run_fused(&g, &feats, &m_fused, &mut opt_fused));

    // Interleaved best-of for the two *serial* legs only: frequency drift on
    // a busy box hits both alike, and keeping the oversubscribed parallel
    // leg out of the rotation stops its worker churn from perturbing the
    // serial timings the gate reads.
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        best.0 = best.0.min(time_once(|| {
            with_thread_count(1, || run_unfused(&g, &feats, &m_unfused, &mut opt_unfused));
        }));
        best.1 = best.1.min(time_once(|| {
            with_thread_count(1, || run_fused(&g, &feats, &m_fused, &mut opt_fused));
        }));
    }
    with_thread_count(threads, || {
        run_fused(&g, &feats, &m_fused_par, &mut opt_fused_par)
    });
    for _ in 0..REPS {
        best.2 = best.2.min(time_once(|| {
            with_thread_count(threads, || {
                run_fused(&g, &feats, &m_fused_par, &mut opt_fused_par)
            });
        }));
    }
    let eps = |t: f64| EPOCHS_PER_REP as f64 / t.max(1e-12);
    let (unfused_eps, fused_eps, fused_par_eps) = (eps(best.0), eps(best.1), eps(best.2));
    let ratio = fused_eps / unfused_eps.max(1e-12);
    eprintln!(
        "unfused(1T) {unfused_eps:7.2}  fused(1T) {fused_eps:7.2}  \
         fused({threads}T) {fused_par_eps:7.2} epochs/s  ratio {ratio:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    match warning {
        Some(w) => {
            let _ = writeln!(json, "  \"warning\": \"{w}\",");
        }
        None => json.push_str("  \"warning\": null,\n"),
    }
    let _ = writeln!(
        json,
        "  \"config\": {{\"nodes\": {}, \"sample_size\": {SAMPLE_SIZE}, \
         \"batch_size\": {BATCH_SIZE}, \"feature_dim\": {FEATURE_DIM}, \
         \"hidden_dim\": {HIDDEN_DIM}, \"latent_dim\": {LATENT_DIM}, \
         \"epochs_per_rep\": {EPOCHS_PER_REP}}},",
        2 * BLOCK
    );
    let _ = writeln!(
        json,
        "  \"train\": {{\"unfused_serial_eps\": {unfused_eps:.4}, \
         \"fused_serial_eps\": {fused_eps:.4}, \
         \"fused_parallel_eps\": {fused_par_eps:.4}, \
         \"fused_vs_unfused_ratio\": {ratio:.3}}}"
    );
    json.push_str("}\n");

    let out = "results/BENCH_train.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(min) = min_ratio {
        if ratio < min {
            eprintln!("FAIL: fused/unfused epochs-per-second ratio {ratio:.2} < {min:.2}");
            std::process::exit(1);
        }
        eprintln!("gate OK: fused/unfused {ratio:.2} >= {min:.2}");
    }
}
