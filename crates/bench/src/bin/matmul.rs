//! Naive-vs-blocked dense matmul throughput, written to
//! `results/BENCH_matmul.json`.
//!
//! Usage: `cargo run --release -p bench --bin matmul
//!         [--threads N] [--assert-min-ratio R]`
//!
//! For each GEMM variant (`matmul`, `matmul_tn`, `matmul_nt`) and each
//! square size, three GFLOP/s figures are reported:
//!
//! * `naive` — the retained scalar i-k-j reference in `cpgan_nn::kernels`,
//! * `blocked_serial` — the cache-blocked microkernels pinned to 1 thread
//!   (the apples-to-apples comparison the CI gate reads),
//! * `blocked_parallel` — the same kernels at `N` threads (informational;
//!   on a 1-core box this measures overhead, not scaling).
//!
//! `--assert-min-ratio R` exits nonzero unless
//! `blocked_serial / naive >= R` for `matmul` at 256x256x256 — the CI
//! regression gate for the blocking/tiling work.

use bench::BenchMeta;
use cpgan_nn::{kernels, Matrix};
use cpgan_parallel::with_thread_count;
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: &[usize] = &[64, 128, 256, 448];
const GATE_SIZE: usize = 256;

/// One timed call of `f`, in wall-clock seconds.
fn time_once<R>(f: impl Fn() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` seconds for each of three kernels, with the reps
/// *interleaved* (naive, blocked-serial, blocked-parallel, repeat) so CPU
/// frequency drift on a busy box hits all three legs alike instead of
/// skewing whichever ran last.
fn best_of_interleaved<R>(
    reps: usize,
    naive: impl Fn() -> R,
    serial: impl Fn() -> R,
    parallel: impl Fn() -> R,
) -> (f64, f64, f64) {
    // Untimed warm-up: first-touch page faults and pool priming land here,
    // not in the first timed rep.
    std::hint::black_box(naive());
    std::hint::black_box(serial());
    std::hint::black_box(parallel());
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        best.0 = best.0.min(time_once(&naive));
        best.1 = best.1.min(time_once(&serial));
        best.2 = best.2.min(time_once(&parallel));
    }
    best
}

fn seed_matrix(rows: usize, cols: usize, offset: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f32 * 0.37 + offset).sin()
    })
}

struct Row {
    kernel: &'static str,
    size: usize,
    naive: f64,
    blocked_serial: f64,
    blocked_parallel: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = flag("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(hw)
        .max(1);
    let min_ratio = flag("--assert-min-ratio").and_then(|v| v.parse::<f64>().ok());
    let meta = BenchMeta::capture(threads);
    eprintln!("dense matmul: naive vs blocked, serial + {threads} thread(s)...");

    let mut rows = Vec::new();
    for &s in SIZES {
        let a = seed_matrix(s, s, 0.1);
        let b = seed_matrix(s, s, 0.7);
        let flops = 2.0 * (s as f64).powi(3);
        // The gate size gets the most reps: best-of variance is what makes
        // a ratio gate flaky on a shared box.
        let reps = if s == GATE_SIZE {
            9
        } else if s > GATE_SIZE {
            5
        } else {
            7
        };
        type Pair<'m> = (
            &'static str,
            Box<dyn Fn() -> Matrix + 'm>,
            Box<dyn Fn() -> Matrix + 'm>,
        );
        let variants: Vec<Pair> = vec![
            (
                "matmul",
                Box::new(|| kernels::matmul_naive(&a, &b)),
                Box::new(|| a.matmul(&b)),
            ),
            (
                "matmul_tn",
                Box::new(|| kernels::matmul_tn_naive(&a, &b)),
                Box::new(|| a.matmul_tn(&b)),
            ),
            (
                "matmul_nt",
                Box::new(|| kernels::matmul_nt_naive(&a, &b)),
                Box::new(|| a.matmul_nt(&b)),
            ),
        ];
        for (kernel, naive_f, blocked_f) in &variants {
            let (t_naive, t_serial, t_parallel) = best_of_interleaved(
                reps,
                naive_f,
                || with_thread_count(1, blocked_f),
                || with_thread_count(threads, blocked_f),
            );
            let naive = flops / t_naive.max(1e-12) / 1e9;
            let blocked_serial = flops / t_serial.max(1e-12) / 1e9;
            let blocked_parallel = flops / t_parallel.max(1e-12) / 1e9;
            eprintln!(
                "{kernel:>10} {s:>4}: naive {naive:7.3}  blocked(1T) {blocked_serial:7.3}  \
                 blocked({threads}T) {blocked_parallel:7.3} GFLOP/s  \
                 ratio {:.2}x",
                blocked_serial / naive.max(1e-12)
            );
            rows.push(Row {
                kernel,
                size: s,
                naive,
                blocked_serial,
                blocked_parallel,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"size\": {}, \"naive_gflops\": {:.4}, \
             \"blocked_serial_gflops\": {:.4}, \"blocked_parallel_gflops\": {:.4}, \
             \"serial_ratio\": {:.3}}}{comma}",
            r.kernel,
            r.size,
            r.naive,
            r.blocked_serial,
            r.blocked_parallel,
            r.blocked_serial / r.naive.max(1e-12),
        );
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_matmul.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(min) = min_ratio {
        let gate = rows
            .iter()
            .find(|r| r.kernel == "matmul" && r.size == GATE_SIZE);
        match gate {
            Some(r) => {
                let ratio = r.blocked_serial / r.naive.max(1e-12);
                if ratio < min {
                    eprintln!(
                        "FAIL: blocked/naive ratio {ratio:.2} < {min:.2} \
                         for matmul at {GATE_SIZE}^3"
                    );
                    std::process::exit(1);
                }
                eprintln!("gate OK: blocked/naive {ratio:.2} >= {min:.2} at {GATE_SIZE}^3");
            }
            None => {
                eprintln!("FAIL: no matmul row at gate size {GATE_SIZE}");
                std::process::exit(1);
            }
        }
    }
}
