//! Regenerates paper Table VII (time per graph generation).
//!
//! Usage: `cargo run --release -p bench --bin table7 [--fast] [--max-size N]`

use cpgan_eval::{pipelines::efficiency, sweep_sizes_from_args, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    let sizes = sweep_sizes_from_args(&args);
    eprintln!("running Table VII over sizes {sizes:?}...");
    let tables = efficiency::run(&cfg, &sizes);
    println!("{}", tables.generation.render());
    cpgan_obs::finish(Some("results/obs.table7.jsonl"));
}
