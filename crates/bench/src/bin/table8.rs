//! Regenerates paper Table VIII (training time).
//!
//! Usage: `cargo run --release -p bench --bin table8 [--fast] [--max-size N]`

use cpgan_eval::{pipelines::efficiency, sweep_sizes_from_args, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    let sizes = sweep_sizes_from_args(&args);
    eprintln!("running Table VIII over sizes {sizes:?}...");
    let tables = efficiency::run(&cfg, &sizes);
    println!("{}", tables.training.render());
    cpgan_obs::finish(Some("results/obs.table8.jsonl"));
}
