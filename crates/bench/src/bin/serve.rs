//! Closed-loop load generator for `cpgan-serve`, written to
//! `results/BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p bench --bin serve [-- --fast]
//!         [--assert-min-rps R] [--assert-max-p99-ms X]
//!         [--assert-min-cached-over-cold R]`
//!
//! A tiny model is fitted in-process and served on a loopback port;
//! closed-loop clients then hammer `POST /v1/generate` with framed reads
//! (`cpgan_serve::http::parse_reply`), reporting throughput and
//! p50/p95/p99 latency per scenario:
//!
//! - `close_c4`: connection-per-request, the PR-5 front-end shape.
//! - `keepalive_c4_cold`: same load over persistent connections.
//! - `keepalive_c128_cold`: 128 keep-alive clients, unique seeds, cache
//!   disabled — generation-bound throughput.
//! - `keepalive_c128_cached`: 128 keep-alive clients drawing from a
//!   16-seed pool with the cache on — connection-layer-bound throughput.
//! - `backpressure_c4`: 1 worker, queue depth 1 — the 429 fast-reject
//!   path (rejects close the connection, so clients also measure
//!   reconnect cost).
//!
//! Clients run on the deterministic pool via `par_map_owned`; `--fast`
//! shrinks the windows for CI smoke runs. The `--assert-*` flags gate CI
//! on the `keepalive_c128_cached` scenario (exit 1 on violation) after
//! the report is written, so the artifact survives a failed gate.

use bench::BenchMeta;
use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::Graph;
use cpgan_parallel::{with_thread_count, Pool};
use cpgan_serve::http::parse_reply;
use cpgan_serve::{ModelRegistry, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Server worker count shared by every scenario except backpressure.
const WORKERS: usize = 2;
/// Requested graph shape: big enough that a cold generation costs
/// milliseconds (so cache hits are measurably cheaper), small enough
/// that the body stays in content-length framing territory.
const GEN_NODES: usize = 1200;
const GEN_EDGES: usize = 2400;
/// Seed pool for the cached scenario: every request after warm-up hits.
const SEED_POOL: u64 = 16;
/// The connection-per-request throughput recorded by the PR-5 bench on
/// the reference box; kept in the report so the keep-alive ratio is
/// visible without digging through git history.
const PR5_CLOSE_RPS: f64 = 450.0;

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// The 3-community fixture graph used across the test suite.
fn bench_graph() -> Graph {
    let mut edges = Vec::new();
    for c in 0..3u32 {
        let base = c * 12;
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a + b) % 2 == 0 {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.push((base, (base + 12) % 36));
    }
    Graph::from_edges(36, edges).unwrap_or_else(|e| die(&format!("bench graph: {e}")))
}

/// How a client picks seeds and treats connections.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Fresh connection per request, unique seeds (the PR-5 shape).
    Close,
    /// Persistent connection, unique seeds (every request generates).
    ColdKeepAlive,
    /// Persistent connection, seeds drawn from a small pool (cache hits).
    CachedKeepAlive,
}

/// A load client: one socket reused across requests in keep-alive
/// modes, with framed reads so replies are delimited by HTTP framing,
/// never by connection close.
struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    close_mode: bool,
}

impl HttpClient {
    fn new(addr: SocketAddr, close_mode: bool) -> HttpClient {
        HttpClient {
            addr,
            stream: None,
            buf: Vec::new(),
            close_mode,
        }
    }

    /// One request round-trip: returns (status, seconds). Transport
    /// failures surface as `Err` and drop the connection.
    fn request(&mut self, seed: u64) -> Result<(u16, f64), std::io::Error> {
        let start = Instant::now();
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        let conn = if self.close_mode {
            "connection: close\r\n"
        } else {
            ""
        };
        let body = format!("{{\"nodes\":{GEN_NODES},\"edges\":{GEN_EDGES},\"seed\":{seed}}}");
        let wire = format!(
            "POST /v1/generate HTTP/1.1\r\nhost: b\r\n{conn}content-length: {}\r\n\r\n{body}",
            body.len()
        );
        let result = self.exchange(wire.as_bytes());
        if result.is_err() {
            self.stream = None;
        }
        let (status, keep) = result?;
        // The server closes after close-mode and non-200 replies; honor
        // that instead of writing into a dead socket next round.
        if self.close_mode || !keep {
            self.stream = None;
        }
        Ok((status, start.elapsed().as_secs_f64()))
    }

    fn exchange(&mut self, wire: &[u8]) -> Result<(u16, bool), std::io::Error> {
        let stream = match self.stream.as_mut() {
            Some(s) => s,
            None => return Err(std::io::Error::other("no connection")),
        };
        stream.write_all(wire)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((reply, used)) = parse_reply(&self.buf)
                .map_err(|e| std::io::Error::other(format!("bad reply: {e}")))?
            {
                self.buf.drain(..used);
                let keep = reply.header("connection") != Some("close");
                return Ok((reply.status, keep));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::other("closed mid-reply"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Outcome counts and success latencies for one client's closed loop.
#[derive(Default)]
struct ClientStats {
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    latencies_s: Vec<f64>,
}

/// Issues requests back-to-back until the window closes.
fn run_client(addr: SocketAddr, client: usize, mode: Mode, window: Duration) -> ClientStats {
    let mut http = HttpClient::new(addr, mode == Mode::Close);
    let mut stats = ClientStats::default();
    let start = Instant::now();
    let mut req = 0u64;
    while start.elapsed() < window {
        let seed = match mode {
            Mode::CachedKeepAlive => req % SEED_POOL,
            _ => client as u64 * 10_000_000 + req,
        };
        req += 1;
        match http.request(seed) {
            Ok((200, s)) => {
                stats.ok += 1;
                stats.latencies_s.push(s);
            }
            Ok((429, _)) => stats.rejected += 1,
            Ok((408, _)) => stats.timed_out += 1,
            Ok(_) | Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Linear-scan percentile over an already-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ScenarioRow {
    name: String,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    cache: bool,
    duration_s: f64,
    requests: u64,
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    rejection_rate: f64,
}

struct Scenario {
    name: &'static str,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    cache_bytes: usize,
    mode: Mode,
}

/// Boots a fresh server, runs `clients` closed loops against it, and
/// aggregates the outcome.
fn run_scenario(sc: &Scenario, model: &CpGan, window: Duration) -> ScenarioRow {
    let mut registry = ModelRegistry::new();
    let copy = CpGan::from_snapshot(model.snapshot())
        .unwrap_or_else(|e| die(&format!("model snapshot round-trip: {e}")));
    registry
        .insert("bench", copy)
        .unwrap_or_else(|e| die(&format!("registry: {e}")));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: sc.workers,
            queue_depth: sc.queue_depth,
            // Generous: closed-loop clients queue at most one request
            // each, so waits stay bounded and 408s would only mean the
            // box is pathologically slow.
            deadline_ms: 30_000,
            cache_bytes: sc.cache_bytes,
            // Keep each generation serial: the pool threads are the
            // *clients* here, and client concurrency is what is measured.
            gen_threads: Some(1),
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap_or_else(|e| die(&format!("server start: {e}")));
    let addr = server.addr();

    if sc.mode == Mode::CachedKeepAlive {
        // Warm every pool seed once so the window measures pure hits.
        let mut warm = HttpClient::new(addr, false);
        for seed in 0..SEED_POOL {
            if let Err(e) = warm.request(seed) {
                die(&format!("cache warm-up failed: {e}"));
            }
        }
    }

    let wall = Instant::now();
    let clients = sc.clients;
    let mode = sc.mode;
    let per_client = with_thread_count(clients, || {
        Pool::global().par_map_owned((0..clients).collect(), move |_, c| {
            run_client(addr, c, mode, window)
        })
    });
    let duration_s = wall.elapsed().as_secs_f64();
    server.shutdown();

    let mut all = ClientStats::default();
    for s in per_client {
        all.ok += s.ok;
        all.rejected += s.rejected;
        all.timed_out += s.timed_out;
        all.errors += s.errors;
        all.latencies_s.extend(s.latencies_s);
    }
    all.latencies_s.sort_unstable_by(f64::total_cmp);
    let requests = all.ok + all.rejected + all.timed_out + all.errors;
    ScenarioRow {
        name: sc.name.to_string(),
        clients: sc.clients,
        workers: sc.workers,
        queue_depth: sc.queue_depth,
        cache: sc.cache_bytes > 0,
        duration_s,
        requests,
        ok: all.ok,
        rejected: all.rejected,
        timed_out: all.timed_out,
        errors: all.errors,
        throughput_rps: all.ok as f64 / duration_s.max(1e-9),
        p50_ms: percentile(&all.latencies_s, 0.50) * 1e3,
        p95_ms: percentile(&all.latencies_s, 0.95) * 1e3,
        p99_ms: percentile(&all.latencies_s, 0.99) * 1e3,
        rejection_rate: all.rejected as f64 / (requests.max(1)) as f64,
    }
}

const CACHE_16_MIB: usize = 16 * 1024 * 1024;

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "close_c4",
        clients: 4,
        workers: WORKERS,
        queue_depth: 16,
        cache_bytes: 0,
        mode: Mode::Close,
    },
    Scenario {
        name: "keepalive_c4_cold",
        clients: 4,
        workers: WORKERS,
        queue_depth: 16,
        cache_bytes: 0,
        mode: Mode::ColdKeepAlive,
    },
    Scenario {
        name: "keepalive_c128_cold",
        clients: 128,
        workers: WORKERS,
        queue_depth: 256,
        cache_bytes: 0,
        mode: Mode::ColdKeepAlive,
    },
    Scenario {
        name: "keepalive_c128_cached",
        clients: 128,
        workers: WORKERS,
        queue_depth: 256,
        cache_bytes: CACHE_16_MIB,
        mode: Mode::CachedKeepAlive,
    },
    Scenario {
        name: "backpressure_c4",
        clients: 4,
        workers: 1,
        queue_depth: 1,
        cache_bytes: 0,
        mode: Mode::ColdKeepAlive,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let fast = args.iter().any(|a| a == "--fast");
    let min_rps = flag("--assert-min-rps").and_then(|v| v.parse::<f64>().ok());
    let max_p99_ms = flag("--assert-max-p99-ms").and_then(|v| v.parse::<f64>().ok());
    let min_cached_over_cold =
        flag("--assert-min-cached-over-cold").and_then(|v| v.parse::<f64>().ok());
    let window = if fast {
        Duration::from_millis(400)
    } else {
        Duration::from_millis(2_000)
    };
    let meta = BenchMeta::capture(WORKERS);
    // Same convention as BENCH_scale: on a single-core box the client
    // fan-out oversubscribes the one hardware thread, so latency then
    // includes scheduling overhead, not connection-layer cost.
    let warning = if meta.available_parallelism == 1 {
        Some(
            "available_parallelism() == 1: closed-loop clients are \
             oversubscribed onto one hardware thread; latency includes \
             scheduling overhead, not connection-layer cost",
        )
    } else {
        None
    };
    if let Some(w) = warning {
        eprintln!("WARNING: {w}");
    }

    eprintln!("fitting bench model...");
    let g = bench_graph();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 6,
        sample_size: 36,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);

    let mut rows = Vec::new();
    for sc in SCENARIOS {
        eprintln!(
            "scenario {}: {} client(s), {} worker(s), queue {}, cache {}...",
            sc.name,
            sc.clients,
            sc.workers,
            sc.queue_depth,
            if sc.cache_bytes > 0 { "on" } else { "off" }
        );
        let row = run_scenario(sc, &model, window);
        eprintln!(
            "  {} req in {:.2}s: {:.0} rps, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, \
             rejected {:.1}%, errors {}",
            row.requests,
            row.duration_s,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.rejection_rate * 100.0,
            row.errors,
        );
        rows.push(row);
    }

    let rps_of = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.throughput_rps)
            .unwrap_or(0.0)
    };
    let close_rps = rps_of("close_c4");
    let cold_rps = rps_of("keepalive_c128_cold");
    let cached_rps = rps_of("keepalive_c128_cached");
    let cached_over_cold = cached_rps / cold_rps.max(1e-9);
    let keepalive_over_close = cached_rps / close_rps.max(1e-9);
    let keepalive_over_pr5 = cached_rps / PR5_CLOSE_RPS;
    eprintln!(
        "ratios: cached/cold {cached_over_cold:.1}x, keepalive/close {keepalive_over_close:.1}x, \
         vs PR-5 baseline {keepalive_over_pr5:.1}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    let _ = writeln!(json, "  \"fast\": {fast},");
    match warning {
        Some(w) => {
            let _ = writeln!(json, "  \"warning\": \"{w}\",");
        }
        None => json.push_str("  \"warning\": null,\n"),
    }
    let _ = writeln!(json, "  \"gen_nodes\": {GEN_NODES},");
    let _ = writeln!(json, "  \"gen_edges\": {GEN_EDGES},");
    let _ = writeln!(json, "  \"baseline_pr5_close_rps\": {PR5_CLOSE_RPS:.1},");
    let _ = writeln!(json, "  \"cached_over_cold\": {cached_over_cold:.2},");
    let _ = writeln!(
        json,
        "  \"keepalive_over_close\": {keepalive_over_close:.2},"
    );
    let _ = writeln!(
        json,
        "  \"keepalive_over_pr5_baseline\": {keepalive_over_pr5:.2},"
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"clients\": {}, \"workers\": {}, \
             \"queue_depth\": {}, \"cache\": {}, \"duration_s\": {:.3}, \
             \"requests\": {}, \"ok\": {}, \"rejected\": {}, \"timed_out\": {}, \
             \"errors\": {}, \"throughput_rps\": {:.2}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"rejection_rate\": {:.4}}}{comma}",
            r.name,
            r.clients,
            r.workers,
            r.queue_depth,
            r.cache,
            r.duration_s,
            r.requests,
            r.ok,
            r.rejected,
            r.timed_out,
            r.errors,
            r.throughput_rps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.rejection_rate,
        );
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_serve.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        die(&format!("failed to write {out}: {e}"));
    }
    eprintln!("wrote {out}");

    // Gates run after the report is written so the artifact survives a
    // failed assertion (same order as the scale bench).
    if let Some(min) = min_rps {
        if cached_rps < min {
            die(&format!(
                "GATE FAILED: keepalive_c128_cached {cached_rps:.0} rps < --assert-min-rps {min}"
            ));
        }
    }
    if let Some(max) = max_p99_ms {
        let p99 = rows
            .iter()
            .find(|r| r.name == "keepalive_c128_cached")
            .map(|r| r.p99_ms)
            .unwrap_or(f64::INFINITY);
        if p99 > max {
            die(&format!(
                "GATE FAILED: keepalive_c128_cached p99 {p99:.2}ms > --assert-max-p99-ms {max}"
            ));
        }
    }
    if let Some(min) = min_cached_over_cold {
        if cached_over_cold < min {
            die(&format!(
                "GATE FAILED: cached/cold ratio {cached_over_cold:.2} < \
                 --assert-min-cached-over-cold {min}"
            ));
        }
    }
}
