//! Closed-loop load generator for `cpgan-serve`, written to
//! `results/BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p bench --bin serve [-- --fast]`
//!
//! A tiny model is fitted in-process and served on a loopback port; 1, 2
//! and 4 closed-loop clients then hammer `POST /v1/generate` for a fixed
//! window (workers = 2, queue 16), reporting throughput, p50/p95/p99
//! latency and rejection rate. A final backpressure scenario (1 worker,
//! queue depth 1, 4 clients) provokes 429s to measure the fast-reject
//! path. Clients run on the deterministic pool via `par_map_owned`;
//! `--fast` shrinks the windows for CI smoke runs.

use bench::BenchMeta;
use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::Graph;
use cpgan_parallel::{with_thread_count, Pool};
use cpgan_serve::{ModelRegistry, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Server worker count shared by every closed-loop scenario.
const WORKERS: usize = 2;

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// The 3-community fixture graph used across the test suite.
fn bench_graph() -> Graph {
    let mut edges = Vec::new();
    for c in 0..3u32 {
        let base = c * 12;
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a + b) % 2 == 0 {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.push((base, (base + 12) % 36));
    }
    Graph::from_edges(36, edges).unwrap_or_else(|e| die(&format!("bench graph: {e}")))
}

/// One request round-trip: returns (status, seconds), or an Err for
/// transport failures (connect refused, truncated reply).
fn round_trip(addr: SocketAddr, seed: u64) -> Result<(u16, f64), std::io::Error> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let body = format!("{{\"seed\":{seed}}}");
    stream.write_all(
        format!(
            "POST /v1/generate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let head = std::str::from_utf8(buf.get(..12).unwrap_or(&buf))
        .map_err(|_| std::io::Error::other("non-utf8 status line"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("unparseable status line"))?;
    Ok((status, start.elapsed().as_secs_f64()))
}

/// Outcome counts and success latencies for one client's closed loop.
#[derive(Default)]
struct ClientStats {
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    latencies_s: Vec<f64>,
}

/// Issues requests back-to-back until the window closes.
fn run_client(addr: SocketAddr, client: usize, window: Duration) -> ClientStats {
    let mut stats = ClientStats::default();
    let start = Instant::now();
    let mut req = 0u64;
    while start.elapsed() < window {
        let seed = client as u64 * 1_000_000 + req;
        req += 1;
        match round_trip(addr, seed) {
            Ok((200, s)) => {
                stats.ok += 1;
                stats.latencies_s.push(s);
            }
            Ok((429, _)) => stats.rejected += 1,
            Ok((408, _)) => stats.timed_out += 1,
            Ok(_) | Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Linear-scan percentile over an already-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ScenarioRow {
    name: String,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    duration_s: f64,
    requests: u64,
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    rejection_rate: f64,
}

/// Boots a fresh server, runs `clients` closed loops against it, and
/// aggregates the outcome.
fn run_scenario(
    name: &str,
    model: &CpGan,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    window: Duration,
) -> ScenarioRow {
    let mut registry = ModelRegistry::new();
    let copy = CpGan::from_snapshot(model.snapshot())
        .unwrap_or_else(|e| die(&format!("model snapshot round-trip: {e}")));
    registry
        .insert("bench", copy)
        .unwrap_or_else(|e| die(&format!("registry: {e}")));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_depth,
            deadline_ms: 2_000,
            // Keep each generation serial: the pool threads are the
            // *clients* here, and client concurrency is what is measured.
            gen_threads: Some(1),
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap_or_else(|e| die(&format!("server start: {e}")));
    let addr = server.addr();

    let wall = Instant::now();
    let per_client = with_thread_count(clients, || {
        Pool::global().par_map_owned((0..clients).collect(), move |_, c| {
            run_client(addr, c, window)
        })
    });
    let duration_s = wall.elapsed().as_secs_f64();
    server.shutdown();

    let mut all = ClientStats::default();
    for s in per_client {
        all.ok += s.ok;
        all.rejected += s.rejected;
        all.timed_out += s.timed_out;
        all.errors += s.errors;
        all.latencies_s.extend(s.latencies_s);
    }
    all.latencies_s.sort_unstable_by(f64::total_cmp);
    let requests = all.ok + all.rejected + all.timed_out + all.errors;
    ScenarioRow {
        name: name.to_string(),
        clients,
        workers,
        queue_depth,
        duration_s,
        requests,
        ok: all.ok,
        rejected: all.rejected,
        timed_out: all.timed_out,
        errors: all.errors,
        throughput_rps: all.ok as f64 / duration_s.max(1e-9),
        p50_ms: percentile(&all.latencies_s, 0.50) * 1e3,
        p95_ms: percentile(&all.latencies_s, 0.95) * 1e3,
        p99_ms: percentile(&all.latencies_s, 0.99) * 1e3,
        rejection_rate: all.rejected as f64 / (requests.max(1)) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let window = if fast {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1_500)
    };
    let meta = BenchMeta::capture(WORKERS);

    eprintln!("fitting bench model...");
    let g = bench_graph();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 6,
        sample_size: 36,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);

    let mut rows = Vec::new();
    for clients in [1usize, 2, 4] {
        let name = format!("closed_loop_c{clients}");
        eprintln!("scenario {name}: {clients} client(s), {WORKERS} workers, queue 16...");
        let row = run_scenario(&name, &model, clients, WORKERS, 16, window);
        eprintln!(
            "  {} req in {:.2}s: {:.0} rps, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, \
             rejected {:.1}%",
            row.requests,
            row.duration_s,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.rejection_rate * 100.0
        );
        rows.push(row);
    }
    eprintln!("scenario backpressure_c4: 4 clients, 1 worker, queue 1...");
    let row = run_scenario("backpressure_c4", &model, 4, 1, 1, window);
    eprintln!(
        "  {} req: {:.0} rps ok, rejected {:.1}% ({} fast 429s)",
        row.requests,
        row.throughput_rps,
        row.rejection_rate * 100.0,
        row.rejected
    );
    rows.push(row);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    let _ = writeln!(json, "  \"fast\": {fast},");
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"clients\": {}, \"workers\": {}, \
             \"queue_depth\": {}, \"duration_s\": {:.3}, \"requests\": {}, \
             \"ok\": {}, \"rejected\": {}, \"timed_out\": {}, \"errors\": {}, \
             \"throughput_rps\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"rejection_rate\": {:.4}}}{comma}",
            r.name,
            r.clients,
            r.workers,
            r.queue_depth,
            r.duration_s,
            r.requests,
            r.ok,
            r.rejected,
            r.timed_out,
            r.errors,
            r.throughput_rps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.rejection_rate,
        );
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_serve.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        die(&format!("failed to write {out}: {e}"));
    }
    eprintln!("wrote {out}");
}
