//! Runs the efficiency sweep once and prints Tables VII, VIII and IX
//! together (cheaper than running the three single-table binaries).
//!
//! Usage: `cargo run --release -p bench --bin sweep [--fast] [--max-size N]`

use cpgan_eval::{pipelines::efficiency, sweep_sizes_from_args, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    let sizes = sweep_sizes_from_args(&args);
    eprintln!("running Tables VII-IX over sizes {sizes:?}...");
    let tables = efficiency::run(&cfg, &sizes);
    println!("{}", tables.generation.render());
    println!("{}", tables.training.render());
    println!("{}", tables.memory.render());
    cpgan_obs::finish(Some("results/obs.sweep.jsonl"));
}
