//! Regenerates paper Figure 5 (parameter sensitivity).
//!
//! Usage: `cargo run --release -p bench --bin fig5 [--fast] [--scale S]`

use cpgan_eval::{pipelines::sensitivity, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    for dataset in ["Citeseer", "PPI"] {
        eprintln!("running Figure 5 sweeps on {dataset}...");
        let table = sensitivity::run(&cfg, dataset);
        println!("{}", table.render());
    }
    cpgan_obs::finish(Some("results/obs.fig5.jsonl"));
}
