//! Regenerates paper Table III (community preservation, NMI/ARI).
//!
//! Usage: `cargo run --release -p bench --bin table3 [--fast] [--scale S] [--seeds K]`

use cpgan_eval::{pipelines::community, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!(
        "running Table III at scale 1/{} with {} seed(s)...",
        cfg.scale, cfg.seeds
    );
    let table = community::run(&cfg, &[]);
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(&args, &table);
    cpgan_obs::finish(Some("results/obs.table3.jsonl"));
}
