//! Disabled-mode overhead proof for the cpgan-obs instrumentation layer,
//! written to `results/BENCH_obs_overhead.json`.
//!
//! Usage:
//! `cargo run --release -p bench --bin obs_overhead [--assert-max-overhead-pct X]`
//!
//! The observability guards are compiled into the hot kernels unconditionally,
//! so the cost that matters is what each guard does when `CPGAN_OBS` is unset:
//! one relaxed atomic load plus a branch. This binary measures that cost per
//! guard kind in a tight loop, then scales it by the number of instrumentation
//! points a representative kernel call crosses and divides by the kernel's own
//! wall-clock. With `--assert-max-overhead-pct` the binary exits non-zero when
//! the estimated overhead exceeds the bound, which lets CI gate regressions.

use bench::BenchMeta;
use cpgan_nn::Matrix;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-op nanoseconds for `f`, best of `reps` timed loops of `iters` calls.
fn ns_per_op(reps: usize, iters: u64, f: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed().as_nanos() as f64;
        best = best.min(total / iters as f64);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_pct = args
        .iter()
        .position(|a| a == "--assert-max-overhead-pct")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());

    // The whole point is the disabled path; force it regardless of the
    // ambient environment so the numbers are what production code pays.
    cpgan_obs::set_enabled(false);
    assert!(
        !cpgan_obs::enabled(),
        "obs must be disabled for the overhead measurement"
    );

    const ITERS: u64 = 4_000_000;
    const REPS: usize = 5;
    let guards: Vec<(&str, f64)> = vec![
        (
            "enabled_check",
            ns_per_op(REPS, ITERS, || {
                std::hint::black_box(cpgan_obs::enabled());
            }),
        ),
        (
            "span_guard",
            ns_per_op(REPS, ITERS, || {
                let g = cpgan_obs::span(std::hint::black_box("bench.noop"));
                std::hint::black_box(&g);
            }),
        ),
        (
            "counter_add",
            ns_per_op(REPS, ITERS, || {
                cpgan_obs::counter_add("bench.noop", std::hint::black_box(1));
            }),
        ),
        (
            "hist_record",
            ns_per_op(REPS, ITERS, || {
                cpgan_obs::hist_record("bench.noop", std::hint::black_box(2.0));
            }),
        ),
        (
            "series_record",
            ns_per_op(REPS, ITERS, || {
                cpgan_obs::series_record("bench.noop", std::hint::black_box(0), 1.0);
            }),
        ),
    ];

    // Representative instrumented kernel: a 256x256 matmul crosses one span
    // guard and one histogram guard per call (see cpgan-nn::matrix).
    let a = Matrix::from_fn(256, 256, |r, c| ((r * 256 + c) as f32 * 0.37).sin());
    let b = Matrix::from_fn(256, 256, |r, c| ((r * 256 + c) as f32 * 0.53).cos());
    let kernel_ns = ns_per_op(REPS, 20, || {
        std::hint::black_box(a.matmul(&b));
    });

    let span_ns = guards[1].1;
    let hist_ns = guards[3].1;
    let per_call_guard_ns = span_ns + hist_ns;
    let overhead_pct = 100.0 * per_call_guard_ns / kernel_ns.max(1.0);

    for (name, ns) in &guards {
        eprintln!("{name:>14}: {ns:.2} ns/op (disabled)");
    }
    eprintln!("matmul 256x256: {:.0} ns/call", kernel_ns);
    eprintln!(
        "estimated disabled-mode overhead: {per_call_guard_ns:.2} ns across \
         2 guards per call = {overhead_pct:.4}% of kernel wall-clock"
    );

    let meta = BenchMeta::capture(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    json.push_str("  \"guards_disabled_ns_per_op\": {\n");
    for (i, (name, ns)) in guards.iter().enumerate() {
        let comma = if i + 1 < guards.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {ns:.3}{comma}");
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"kernel\": \"matmul_256x256\",");
    let _ = writeln!(json, "  \"kernel_ns_per_call\": {kernel_ns:.1},");
    let _ = writeln!(json, "  \"guards_per_kernel_call\": 2,");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.5}");
    json.push_str("}\n");

    let out = "results/BENCH_obs_overhead.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(bound) = max_pct {
        if overhead_pct > bound {
            eprintln!("FAIL: overhead {overhead_pct:.4}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        eprintln!("OK: overhead {overhead_pct:.4}% within bound {bound}%");
    }
}
