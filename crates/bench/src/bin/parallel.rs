//! Serial-vs-parallel wall-clock for the hot kernels wired onto the
//! cpgan-parallel runtime, written to `results/BENCH_parallel.json`.
//!
//! Usage: `cargo run --release -p bench --bin parallel [--threads N]`
//!
//! Each kernel runs pinned to one thread and then to `N` threads (default:
//! `available_parallelism`) via `with_thread_count`; the best of several
//! repetitions is reported. Because the runtime is deterministic, both runs
//! produce bit-identical values — only the wall-clock differs.

use bench::BenchMeta;
use cpgan_graph::{mmd, spectral, stats::clustering, stats::path, Graph};
use cpgan_nn::{Csr, Matrix};
use cpgan_parallel::with_thread_count;
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_of<R>(reps: usize, f: impl Fn() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Ring + strided chords: deterministic, triangle-rich benchmark graph.
fn bench_graph(n: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for (stride, jump) in [(1u32, 2u32), (2, 3), (3, 5), (5, 7), (7, 11)] {
        edges.extend((0..n).step_by(stride as usize).map(|i| (i, (i + jump) % n)));
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n as usize, edges).unwrap_or_else(|e| {
        eprintln!("bench graph construction failed: {e}");
        std::process::exit(1);
    })
}

fn seed_matrix(rows: usize, cols: usize, offset: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f32 * 0.37 + offset).sin()
    })
}

/// A named, owned benchmark closure.
type Kernel = Box<dyn Fn()>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let flag_threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    // On a single-core box `available_parallelism() == 1` and defaulting the
    // "parallel" leg to it silently benchmarks serial-vs-serial, reporting
    // speedups below 1.0 (pure overhead). Force an explicit oversubscribed
    // thread count instead and flag the run loudly: the numbers then measure
    // scheduling overhead, not scaling.
    let (threads, warning) = match flag_threads {
        Some(t) => (t.max(1), None),
        None if hw > 1 => (hw, None),
        None => (
            4,
            Some(
                "available_parallelism() == 1: parallel leg forced to 4 \
                 oversubscribed threads; speedups measure overhead, not scaling",
            ),
        ),
    };
    let meta = BenchMeta::capture(threads);
    if let Some(w) = warning {
        eprintln!("WARNING: {w}");
        eprintln!("WARNING: do not read this report as a scaling result");
    }
    eprintln!("benchmarking kernels at 1 vs {threads} thread(s) ({hw} cores visible)...");

    let mm_a = seed_matrix(448, 448, 0.1);
    let mm_b = seed_matrix(448, 448, 0.7);
    let g_big = bench_graph(60_000);
    let g_mid = bench_graph(4_000);
    let csr = Csr::normalized_adjacency(&bench_graph(20_000));
    let feats = seed_matrix(20_000, 64, 0.3);
    let hists_a: Vec<Vec<f64>> = (0..128)
        .map(|i| mmd::clustering_histogram_normalized(&bench_graph(300 + 11 * i)))
        .collect();
    let hists_b: Vec<Vec<f64>> = (0..128)
        .map(|i| mmd::clustering_histogram_normalized(&bench_graph(310 + 13 * i)))
        .collect();

    let kernels: Vec<(&str, Kernel)> = vec![
        (
            "matmul",
            Box::new(move || {
                std::hint::black_box(mm_a.matmul(&mm_b));
            }),
        ),
        (
            "mmd",
            Box::new(move || {
                std::hint::black_box(mmd::mmd_squared(&hists_a, &hists_b, 1.0));
            }),
        ),
        (
            "clustering",
            Box::new(move || {
                std::hint::black_box(clustering::local_clustering(&g_big));
            }),
        ),
        ("cpl", {
            let g = g_mid.clone();
            Box::new(move || {
                std::hint::black_box(path::characteristic_path_length(&g, 128));
            })
        }),
        (
            "spmm",
            Box::new(move || {
                std::hint::black_box(csr.matmul_dense(&feats));
            }),
        ),
        (
            "spectral",
            Box::new(move || {
                std::hint::black_box(spectral::spectral_embedding(&g_mid, 8, 7));
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, f) in &kernels {
        let serial = with_thread_count(1, || best_of(3, f));
        let parallel = with_thread_count(threads, || best_of(3, f));
        let speedup = serial / parallel.max(1e-12);
        eprintln!(
            "{name:>10}: serial {serial:.4}s  parallel {parallel:.4}s  speedup {speedup:.2}x"
        );
        rows.push((*name, serial, parallel, speedup));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    match warning {
        Some(w) => {
            let _ = writeln!(json, "  \"warning\": \"{w}\",");
        }
        None => json.push_str("  \"warning\": null,\n"),
    }
    json.push_str("  \"kernels\": [\n");
    for (i, (name, serial, parallel, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"serial_s\": {serial:.6}, \
             \"parallel_s\": {parallel:.6}, \"speedup\": {speedup:.3}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_parallel.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
