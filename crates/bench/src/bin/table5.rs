//! Regenerates paper Table V (graph reconstruction, 80/20 split).
//!
//! Usage: `cargo run --release -p bench --bin table5 [--fast] [--scale S]`

use cpgan_eval::{pipelines::reconstruction, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("running Table V at scale 1/{}...", cfg.scale);
    let table = reconstruction::run(&cfg);
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(&args, &table);
    cpgan_obs::finish(Some("results/obs.table5.jsonl"));
}
