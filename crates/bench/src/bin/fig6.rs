//! Regenerates paper Figure 6 (hyper-parameter robustness).
//!
//! Usage: `cargo run --release -p bench --bin fig6 [--fast] [--scale S]`

use cpgan_eval::{pipelines::robustness, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("running Figure 6 grid on Citeseer...");
    let table = robustness::run(&cfg, "Citeseer");
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(&args, &table);
    cpgan_obs::finish(Some("results/obs.fig6.jsonl"));
}
