//! Regenerates paper Table IV (generative distribution distance).
//!
//! Usage: `cargo run --release -p bench --bin table4 [--fast] [--scale S]`

use cpgan_eval::{pipelines::quality, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("running Table IV at scale 1/{}...", cfg.scale);
    let table = quality::run(&cfg, &[]);
    println!("{}", table.render());
    cpgan_eval::report::maybe_write_json(&args, &table);
    cpgan_obs::finish(Some("results/obs.table4.jsonl"));
}
