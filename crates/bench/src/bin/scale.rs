//! Sharded-pipeline scale benchmark, written to `results/BENCH_scale.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin scale [--threads N] [--max-nodes N]
//!     [--assert-min-nodes-per-sec X]
//! ```
//!
//! Runs `cpgan_shard::ShardPipeline` end-to-end (partition → per-shard
//! train+generate → stitch) on planted-partition graphs at 10k, 100k and
//! 500k nodes, reporting throughput (nodes/sec, edges/sec) and two memory
//! figures per leg: the scheduler's per-wave peak estimate and the nn
//! allocator's measured peak (`cpgan_nn::memory::peak_bytes`). Each leg
//! states the memory budget it ran under; `--max-nodes` trims the list for
//! CI, and `--assert-min-nodes-per-sec` gates regressions (exit 1).

use bench::BenchMeta;
use cpgan::CpGanConfig;
use cpgan_data::planted::{self, PlantedConfig};
use cpgan_parallel::with_thread_count;
use cpgan_shard::{ShardConfig, ShardPipeline, ShardReport};
use std::fmt::Write as _;
use std::time::Instant;

/// Per-wave scheduling budget every leg runs under (stated in the report).
const MEMORY_BUDGET_BYTES: usize = 512 << 20; // 512 MiB

struct LegResult {
    nodes: usize,
    edges_in: usize,
    edges_out: usize,
    report: ShardReport,
    secs: f64,
    measured_peak_bytes: usize,
}

/// Planted graph sized so community scale roughly matches the shard budget.
fn leg_graph(n: usize, seed: u64) -> cpgan_graph::Graph {
    let cfg = PlantedConfig {
        n,
        m: n * 4,
        communities: (n / 1200).max(8),
        mixing: 0.1,
        seed,
        ..PlantedConfig::default()
    };
    planted::generate(&cfg).graph
}

/// Per-shard model sized for throughput: the bench measures the pipeline's
/// scaling, not model quality, so each shard gets a few cheap epochs.
fn leg_model() -> CpGanConfig {
    CpGanConfig {
        epochs: 2,
        sample_size: 32,
        hidden_dim: 16,
        latent_dim: 8,
        levels: 1,
        ..CpGanConfig::tiny()
    }
}

fn run_leg(n: usize) -> Option<LegResult> {
    let g = leg_graph(n, 0xBEEF ^ n as u64);
    let pipeline = match ShardPipeline::new(ShardConfig {
        max_shard_size: 2000,
        memory_budget_bytes: MEMORY_BUDGET_BYTES,
        model: leg_model(),
        seed: 42,
        inter_pair_fraction: 1.0,
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipeline config rejected: {e}");
            return None;
        }
    };
    cpgan_nn::memory::reset_peak();
    let start = Instant::now();
    let report = match pipeline.run(&g) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipeline failed at n={n}: {e}");
            return None;
        }
    };
    let secs = start.elapsed().as_secs_f64();
    Some(LegResult {
        nodes: n,
        edges_in: g.m(),
        edges_out: report.graph.m(),
        measured_peak_bytes: cpgan_nn::memory::peak_bytes(),
        report,
        secs,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let flag_threads = flag("--threads").and_then(|v| v.parse::<usize>().ok());
    // Same convention as BENCH_parallel: on a single-core box the default
    // "parallel" fan-out silently degenerates to serial execution, so force
    // oversubscription and flag the run — throughput then includes
    // scheduling overhead, not scaling headroom.
    let (threads, warning) = match flag_threads {
        Some(t) => (t.max(1), None),
        None if hw > 1 => (hw, None),
        None => (
            4,
            Some(
                "available_parallelism() == 1: shard fan-out forced to 4 \
                 oversubscribed threads; throughput includes scheduling \
                 overhead, not parallel speedup",
            ),
        ),
    };
    let max_nodes = flag("--max-nodes")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    let min_nps = flag("--assert-min-nodes-per-sec").and_then(|v| v.parse::<f64>().ok());

    let meta = BenchMeta::capture(threads);
    if let Some(w) = warning {
        eprintln!("WARNING: {w}");
    }
    eprintln!(
        "sharded-pipeline scale bench at {threads} thread(s), \
         {} MiB wave budget...",
        MEMORY_BUDGET_BYTES >> 20
    );

    let mut results = Vec::new();
    for n in [10_000usize, 100_000, 500_000] {
        if n > max_nodes {
            eprintln!("skipping n={n} (--max-nodes {max_nodes})");
            continue;
        }
        let Some(leg) = with_thread_count(threads, || run_leg(n)) else {
            std::process::exit(1);
        };
        eprintln!(
            "n={:>7}: {:>7.2}s  {:>9.0} nodes/s  {:>9.0} edges/s  \
             {} shards / {} waves  sched peak {} MiB, measured nn peak {} MiB",
            leg.nodes,
            leg.secs,
            leg.nodes as f64 / leg.secs,
            leg.edges_out as f64 / leg.secs,
            leg.report.shards,
            leg.report.waves,
            leg.report.peak_estimate_bytes >> 20,
            leg.measured_peak_bytes >> 20,
        );
        if leg.report.peak_estimate_bytes > MEMORY_BUDGET_BYTES {
            eprintln!(
                "NOTE: scheduled peak exceeds the wave budget at n={} — an \
                 indivisible shard was larger than the budget",
                leg.nodes
            );
        }
        results.push(leg);
    }

    if results.is_empty() {
        eprintln!("no legs executed (check --max-nodes)");
        std::process::exit(1);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&meta.json_fields("  "));
    match warning {
        Some(w) => {
            let _ = writeln!(json, "  \"warning\": \"{w}\",");
        }
        None => json.push_str("  \"warning\": null,\n"),
    }
    let _ = writeln!(json, "  \"memory_budget_bytes\": {MEMORY_BUDGET_BYTES},");
    json.push_str("  \"legs\": [\n");
    for (i, leg) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"edges_in\": {}, \"edges_out\": {}, \
             \"shards\": {}, \"waves\": {}, \"secs\": {:.4}, \
             \"nodes_per_sec\": {:.1}, \"edges_per_sec\": {:.1}, \
             \"scheduled_peak_bytes\": {}, \"measured_nn_peak_bytes\": {}, \
             \"within_budget\": {}}}{comma}",
            leg.nodes,
            leg.edges_in,
            leg.edges_out,
            leg.report.shards,
            leg.report.waves,
            leg.secs,
            leg.nodes as f64 / leg.secs,
            leg.edges_out as f64 / leg.secs,
            leg.report.peak_estimate_bytes,
            leg.measured_peak_bytes,
            leg.report.peak_estimate_bytes <= MEMORY_BUDGET_BYTES,
        );
    }
    json.push_str("  ]\n}\n");

    let out = "results/BENCH_scale.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, &json)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(min) = min_nps {
        for leg in &results {
            let nps = leg.nodes as f64 / leg.secs;
            if nps < min {
                eprintln!(
                    "FAIL: n={} ran at {:.0} nodes/s, below the {min:.0} floor",
                    leg.nodes, nps
                );
                std::process::exit(1);
            }
        }
        eprintln!("throughput gate passed (>= {min:.0} nodes/s on every leg)");
    }
}
