#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared benchmark plumbing.
//!
//! Every bench binary that writes a `results/BENCH_*.json` report embeds the
//! same run metadata via [`BenchMeta`], so reports from different machines
//! and revisions are comparable without guessing at the environment.

/// Environment metadata captured once per benchmark run.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Hardware threads visible to the process.
    pub available_parallelism: usize,
    /// Worker threads the benchmark actually used.
    pub threads: usize,
    /// The raw `CPGAN_THREADS` setting, if any.
    pub cpgan_threads_env: Option<String>,
    /// Short git revision of the workspace, or `"unknown"` outside a repo.
    pub git_rev: String,
}

impl BenchMeta {
    /// Captures the current environment; `threads` is the worker count the
    /// benchmark resolved (after flags/env defaulting).
    pub fn capture(threads: usize) -> Self {
        let available_parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        BenchMeta {
            available_parallelism,
            threads,
            cpgan_threads_env: std::env::var("CPGAN_THREADS").ok(),
            git_rev,
        }
    }

    /// Renders the metadata as JSON object fields (no surrounding braces),
    /// one per line, each line ending in a comma, indented by `indent`.
    pub fn json_fields(&self, indent: &str) -> String {
        let env = match &self.cpgan_threads_env {
            Some(v) => format!("\"{}\"", v.replace(['"', '\\'], "_")),
            None => "null".to_string(),
        };
        format!(
            "{indent}\"available_parallelism\": {},\n\
             {indent}\"threads\": {},\n\
             {indent}\"cpgan_threads_env\": {env},\n\
             {indent}\"git_rev\": \"{}\",\n",
            self.available_parallelism, self.threads, self.git_rev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_render() {
        let meta = BenchMeta::capture(4);
        assert!(meta.available_parallelism >= 1);
        assert_eq!(meta.threads, 4);
        let fields = meta.json_fields("  ");
        assert!(fields.contains("\"threads\": 4,"));
        assert!(fields.contains("\"git_rev\": \""));
        // Must be valid inside a JSON object: every line ends with a comma.
        assert!(fields.lines().all(|l| l.ends_with(',')));
    }
}
