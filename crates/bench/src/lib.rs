#![forbid(unsafe_code)]
//! Placeholder; implemented later in the build plan.
