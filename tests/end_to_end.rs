//! End-to-end integration tests spanning the whole workspace: data
//! synthesis -> model training -> generation -> community/quality
//! evaluation.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan::{CpGan, CpGanConfig, Variant};
use cpgan_community::{louvain, metrics};
use cpgan_data::planted::{generate, PlantedConfig};
use cpgan_eval::pipelines::{community_scores, quality_diff};
use cpgan_eval::registry::{fit_and_generate, ModelKind};
use cpgan_eval::EvalConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn observed() -> (cpgan_graph::Graph, Vec<usize>) {
    let pg = generate(&PlantedConfig {
        n: 240,
        m: 1_100,
        communities: 6,
        mixing: 0.1,
        seed: 5,
        ..Default::default()
    });
    (pg.graph, pg.labels)
}

fn quick_eval_cfg() -> EvalConfig {
    EvalConfig {
        scale: 64,
        seeds: 1,
        deep_epochs: 60,
        cpgan_epochs: 25,
        ..EvalConfig::fast()
    }
}

#[test]
#[ignore = "multi-minute full training run; exercised by the CI --ignored job"]
fn cpgan_end_to_end_preserves_communities() {
    let (g, labels) = observed();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 60,
        sample_size: 120,
        ..CpGanConfig::default()
    });
    let stats = model.fit(&g);
    assert_eq!(stats.epochs.len(), 60);
    let mut rng = StdRng::seed_from_u64(1);
    let out = model.generate(g.n(), g.m(), &mut rng);
    assert_eq!(out.n(), g.n());
    // Compare against *planted* labels: generated graph must carry real
    // community signal, well above an E-R graph of the same size (which
    // scores near zero).
    let det = louvain::louvain(&out, 0);
    let nmi = metrics::nmi(det.labels(), &labels);
    let er = cpgan_generators::er::ErdosRenyi::with_counts(g.n(), g.m());
    let er_graph = {
        use cpgan_generators::GraphGenerator;
        er.generate(&mut rng)
    };
    let er_nmi = metrics::nmi(louvain::louvain(&er_graph, 0).labels(), &labels);
    assert!(
        nmi > er_nmi,
        "CPGAN nmi {nmi:.3} not above E-R baseline {er_nmi:.3}"
    );
}

#[test]
fn every_registry_model_round_trips_on_one_graph() {
    let (g, _) = observed();
    let cfg = EvalConfig {
        deep_epochs: 8,
        cpgan_epochs: 4,
        ..quick_eval_cfg()
    };
    for kind in ModelKind::sweep() {
        let out = fit_and_generate(kind, &g, &cfg, 9);
        assert_eq!(out.n(), g.n(), "{}", kind.name());
        let q = quality_diff(&g, &out, 64);
        assert!(q.deg.is_finite(), "{}", kind.name());
        let (nmi, ari) = community_scores(&g, &out, 0);
        assert!((0.0..=1.0).contains(&nmi), "{}", kind.name());
        assert!((-1.0..=1.0).contains(&ari), "{}", kind.name());
    }
}

#[test]
fn ablation_variants_all_train_and_generate() {
    let (g, _) = observed();
    for variant in [
        Variant::Full,
        Variant::ConcatDecoder,
        Variant::NoVariational,
        Variant::NoHierarchy,
    ] {
        let mut model = CpGan::new(CpGanConfig {
            variant,
            epochs: 10,
            sample_size: 100,
            ..CpGanConfig::tiny()
        });
        let stats = model.fit(&g);
        assert!(stats.last().unwrap().g_loss.is_finite(), "{variant:?}");
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.generate(g.n(), g.m(), &mut rng);
        assert_eq!(out.n(), g.n(), "{variant:?}");
        assert!(out.m() > 0, "{variant:?}");
    }
}

#[test]
#[ignore = "multi-minute full training run; exercised by the CI --ignored job"]
fn community_preserving_models_beat_er_on_planted_graph() {
    // The core qualitative claim of Table III, checked end-to-end on a
    // strongly community-structured graph: community-aware generators must
    // beat E-R on NMI.
    let (g, _) = observed();
    let cfg = quick_eval_cfg();
    let score = |kind: ModelKind| -> f64 {
        let out = fit_and_generate(kind, &g, &cfg, 31);
        community_scores(&g, &out, 0).0
    };
    let er = score(ModelKind::Er);
    let sbm = score(ModelKind::Sbm);
    let cpgan = score(ModelKind::CpGan(Variant::Full));
    assert!(sbm > er, "SBM {sbm:.3} vs E-R {er:.3}");
    assert!(cpgan > er, "CPGAN {cpgan:.3} vs E-R {er:.3}");
}

#[test]
fn memory_accounting_tracks_training() {
    let (g, _) = observed();
    cpgan_nn::memory::reset_peak();
    let before = cpgan_nn::memory::live_bytes();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 3,
        sample_size: 80,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);
    let peak = cpgan_nn::memory::peak_bytes();
    assert!(peak > before, "training allocated no tracked tensors");
}
