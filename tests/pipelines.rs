//! Integration tests for the table/figure pipelines at smoke scale: every
//! experiment renderer must produce a complete, well-formed table.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_eval::pipelines::{ablation, community, efficiency, quality, reconstruction};
use cpgan_eval::EvalConfig;

fn smoke_cfg() -> EvalConfig {
    EvalConfig {
        scale: 64,
        seeds: 1,
        deep_epochs: 10,
        cpgan_epochs: 5,
        dense_node_cap: 400,
        ..EvalConfig::fast()
    }
}

#[test]
fn table3_renders_all_models_and_datasets() {
    let cfg = smoke_cfg();
    let table = community::run(&cfg, &["Citeseer", "PPI"]);
    // 9 models, 2 datasets x 2 metrics + model column.
    assert_eq!(table.rows.len(), 9);
    assert_eq!(table.headers.len(), 5);
    let rendered = table.render();
    assert!(rendered.contains("CPGAN"));
    assert!(rendered.contains("BTER"));
    assert!(rendered.contains("paper"));
}

#[test]
fn table3_facebook_column_has_oom_rows() {
    let cfg = smoke_cfg();
    let table = community::run(&cfg, &["Facebook"]);
    let vgae_row = table
        .rows
        .iter()
        .find(|r| r[0] == "VGAE")
        .expect("VGAE row");
    assert!(vgae_row[1].contains("OOM"), "VGAE cell: {}", vgae_row[1]);
    assert!(vgae_row[1].contains("paper OOM"));
    let cpgan_row = table
        .rows
        .iter()
        .find(|r| r[0] == "CPGAN")
        .expect("CPGAN row");
    assert!(
        !cpgan_row[1].contains("OOM"),
        "CPGAN cell: {}",
        cpgan_row[1]
    );
}

#[test]
fn table4_renders_citeseer() {
    let cfg = smoke_cfg();
    let table = quality::run(&cfg, &["Citeseer"]);
    assert_eq!(table.rows.len(), 13);
    assert_eq!(table.headers.len(), 6);
    for row in &table.rows {
        assert_eq!(row.len(), 6, "row {row:?}");
    }
}

#[test]
fn table5_renders_both_datasets() {
    let cfg = smoke_cfg();
    let table = reconstruction::run(&cfg);
    assert_eq!(table.rows.len(), 5);
    assert_eq!(table.headers.len(), 15);
    let rendered = table.render();
    assert!(rendered.contains("TrainNLL"));
}

#[test]
fn table6_renders_variants_in_order() {
    let cfg = smoke_cfg();
    let table = ablation::run(&cfg, &["PPI"]);
    let names: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(names, vec!["CPGAN-C", "CPGAN-noV", "CPGAN-noH", "CPGAN"]);
}

#[test]
fn efficiency_tables_render_at_small_sizes() {
    let cfg = smoke_cfg();
    let tables = efficiency::run(&cfg, &[100]);
    assert_eq!(tables.generation.rows.len(), 15);
    assert_eq!(tables.training.rows.len(), 15);
    assert_eq!(tables.memory.rows.len(), 15);
    // At n = 100 nothing is OOM.
    for row in &tables.generation.rows {
        assert!(!row[1].contains("OOM"), "row {row:?}");
    }
}
