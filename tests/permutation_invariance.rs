//! Cross-crate permutation-invariance tests (paper Eq. 5): CPGAN's encoder
//! pipeline and every evaluation metric must be invariant to node
//! relabelling.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan::config::CpGanConfig;
use cpgan::encoder::{AdjInput, LadderEncoder};
use cpgan_data::planted::{generate, PlantedConfig};
use cpgan_eval::pipelines::quality_diff;
use cpgan_graph::{spectral, Graph, NodeId};
use cpgan_nn::{Csr, Matrix, ParamStore, Tape};
use proptest::prelude::*;
use proptest::strategy::ValueTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn planted_graph(seed: u64) -> Graph {
    generate(&PlantedConfig {
        n: 60,
        m: 240,
        communities: 4,
        seed,
        ..Default::default()
    })
    .graph
}

fn permute_features(x: &Matrix, perm: &[NodeId]) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for (v, &pv) in perm.iter().enumerate() {
        out.row_mut(pv as usize).copy_from_slice(x.row(v));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn encoder_readout_permutation_invariant(seed in 0u64..50) {
        let g = planted_graph(seed);
        let n = g.n();
        let cfg = CpGanConfig {
            sample_size: n,
            hidden_dim: 8,
            spectral_dim: 4,
            ..CpGanConfig::tiny()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = LadderEncoder::new(&mut store, &mut rng, &cfg);

        let spec = spectral::spectral_embedding(&g, 4, 7);
        let feats = Matrix::from_fn(n, 5, |r, c| {
            if c < 4 {
                spec[r * 4 + c]
            } else {
                (g.degree(r as NodeId) as f32 + 1.0).ln()
            }
        });
        let tape1 = Tape::new();
        let out1 = enc.encode(
            &tape1,
            &AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(&g))),
            &tape1.constant(feats.clone()),
        );
        let r1 = out1.readout_flat.value();

        // Random permutation drawn deterministically from the seed.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let perm: Vec<NodeId> = Just((0..n as NodeId).collect::<Vec<_>>())
            .prop_shuffle()
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let pg = g.permute(&perm);
        let pfeats = permute_features(&feats, &perm);
        let tape2 = Tape::new();
        let out2 = enc.encode(
            &tape2,
            &AdjInput::Sparse(Arc::new(Csr::normalized_adjacency(&pg))),
            &tape2.constant(pfeats),
        );
        let r2 = out2.readout_flat.value();
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "readout changed: {a} vs {b}");
        }
    }

    #[test]
    fn quality_metrics_permutation_invariant(seed in 0u64..50) {
        let g = planted_graph(seed);
        let other = planted_graph(seed + 1000);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let perm: Vec<NodeId> = Just((0..g.n() as NodeId).collect::<Vec<_>>())
            .prop_shuffle()
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let pg = other.permute(&perm);
        let q1 = quality_diff(&g, &other, usize::MAX);
        let q2 = quality_diff(&g, &pg, usize::MAX);
        prop_assert!((q1.deg - q2.deg).abs() < 1e-9);
        prop_assert!((q1.clus - q2.clus).abs() < 1e-9);
        prop_assert!((q1.cpl - q2.cpl).abs() < 1e-9);
        prop_assert!((q1.gini - q2.gini).abs() < 1e-9);
        prop_assert!((q1.pwe - q2.pwe).abs() < 1e-9);
    }
}
